package storage

import (
	"bufio"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func tailFile(t *testing.T, data []byte) *os.File {
	t.Helper()
	path := filepath.Join(t.TempDir(), "log")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// frameNext is the binary-framing callback the WAL and probe cache use.
func frameNext(r *bufio.Reader) (int64, error) {
	_, n, err := readFrame(r, maxWALPayload)
	return n, err
}

// jsonlNext is the newline-framing callback the service job store
// uses: a final line without its terminator is a torn record.
func jsonlNext(r *bufio.Reader) (int64, error) {
	line, err := r.ReadString('\n')
	if err == io.EOF {
		if line != "" {
			return 0, ErrTornRecord
		}
		return 0, io.EOF
	}
	if err != nil {
		return 0, err
	}
	return int64(len(line)), nil
}

func fileSize(t *testing.T, f *os.File) int64 {
	t.Helper()
	fi, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

func TestRecoverTailCleanLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for _, p := range []string{"one", "two", "three"} {
		if err := writeFrame(f, []byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	good, torn, err := RecoverTail(f, frameNext)
	if err != nil {
		t.Fatal(err)
	}
	if torn != 0 {
		t.Fatalf("torn = %d on a clean log", torn)
	}
	if want := fileSize(t, f); good != want {
		t.Fatalf("good = %d, want %d", good, want)
	}
}

// The regression the shared helper exists for: a crash mid-append
// leaves a partial final record; recovery must keep every intact
// record and truncate exactly the torn suffix — for both framings.
func TestRecoverTailTornMidRecord(t *testing.T) {
	t.Run("binary-frames", func(t *testing.T) {
		f := tailFile(t, nil)
		writeFrame(f, []byte("intact-1"))
		writeFrame(f, []byte("intact-2"))
		intact := fileSize(t, f)
		// Torn suffixes: partial header, header+partial payload, full
		// frame with corrupt CRC.
		for _, suffix := range [][]byte{
			{9, 0},
			{9, 0, 0, 0, 0xDE, 0xAD, 0xBE, 0xEF, 'p', 'a', 'r'},
			{3, 0, 0, 0, 0, 0, 0, 0, 'x', 'y', 'z'},
		} {
			if err := f.Truncate(intact); err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteAt(suffix, intact); err != nil {
				t.Fatal(err)
			}
			good, torn, err := RecoverTail(f, frameNext)
			if err != nil {
				t.Fatalf("suffix %v: %v", suffix, err)
			}
			if good != intact || torn != int64(len(suffix)) {
				t.Fatalf("suffix %v: good=%d torn=%d, want good=%d torn=%d",
					suffix, good, torn, intact, len(suffix))
			}
			if fileSize(t, f) != intact {
				t.Fatalf("suffix %v: torn tail not truncated", suffix)
			}
			// The recovered log must now be clean.
			if _, torn, err := RecoverTail(f, frameNext); err != nil || torn != 0 {
				t.Fatalf("suffix %v: rescan: torn=%d err=%v", suffix, torn, err)
			}
		}
	})
	t.Run("jsonl", func(t *testing.T) {
		f := tailFile(t, []byte("{\"id\":1}\n{\"id\":2}\n{\"id\":3"))
		good, torn, err := RecoverTail(f, jsonlNext)
		if err != nil {
			t.Fatal(err)
		}
		if good != 18 || torn != 7 {
			t.Fatalf("good=%d torn=%d, want 18/7", good, torn)
		}
		raw, err := os.ReadFile(f.Name())
		if err != nil {
			t.Fatal(err)
		}
		if string(raw) != "{\"id\":1}\n{\"id\":2}\n" {
			t.Fatalf("recovered file = %q", raw)
		}
	})
}

func TestRecoverTailAbortsOnOtherErrors(t *testing.T) {
	f := tailFile(t, []byte("data-that-must-survive"))
	boom := errors.New("schema mismatch")
	_, _, err := RecoverTail(f, func(r *bufio.Reader) (int64, error) {
		return 0, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped %v", err, boom)
	}
	if !strings.Contains(err.Error(), "recover tail") {
		t.Fatalf("err not wrapped with context: %v", err)
	}
	if fileSize(t, f) != 22 {
		t.Fatal("RecoverTail truncated on a non-torn error")
	}
}

func TestRecoverTailRefusesOverReportedSizes(t *testing.T) {
	f := tailFile(t, []byte("abc"))
	_, _, err := RecoverTail(f, func(r *bufio.Reader) (int64, error) {
		if _, err := r.ReadByte(); err != nil {
			return 0, io.EOF
		}
		return 1000, nil // claims far more than the file holds
	})
	if err == nil {
		t.Fatal("over-reported sizes accepted")
	}
	if fileSize(t, f) != 3 {
		t.Fatal("file truncated despite size inconsistency")
	}
}
