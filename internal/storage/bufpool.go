package storage

import (
	"container/list"
	"sync"
)

// Pool is a fixed-capacity buffer pool of heap pages. Pages are
// faulted in on Get (pinning them), released with Unpin, and evicted
// least-recently-used once unpinned. Dirty frames are written back to
// their heap file on eviction and on FlushAll.
//
// Capacity is a target, not a hard wall: when every resident frame is
// pinned the pool over-allocates rather than deadlock, and shrinks
// back as pins are released (the excess frames are the first LRU
// victims).
type Pool struct {
	mu       sync.Mutex
	capacity int
	frames   map[frameKey]*frame
	lru      *list.List // unpinned frames; front = most recently used
	stats    PoolStats
}

// PoolStats counts pool traffic; read via Stats.
type PoolStats struct {
	Hits      int64 // Get served from a resident frame
	Misses    int64 // Get that read the page from disk
	Evictions int64 // frames dropped to make room
	Writeback int64 // dirty frames flushed on eviction
}

type frameKey struct {
	file *heapFile
	page int
}

// frame is one resident page. Callers may read (and, for frames
// later unpinned dirty, write) Data only between Get and Unpin.
type frame struct {
	key   frameKey
	Data  []byte
	pins  int
	dirty bool
	elem  *list.Element // non-nil iff on the LRU (pins == 0)
}

// NewPool builds a pool holding up to capacity pages.
func NewPool(capacity int) *Pool {
	if capacity <= 0 {
		capacity = 1
	}
	return &Pool{
		capacity: capacity,
		frames:   make(map[frameKey]*frame),
		lru:      list.New(),
	}
}

// Get returns a pinned frame for (h, page), reading it from disk on
// a miss. The caller must Unpin it exactly once.
func (p *Pool) Get(h *heapFile, page int) (*frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	key := frameKey{file: h, page: page}
	if fr, ok := p.frames[key]; ok {
		p.stats.Hits++
		if fr.elem != nil {
			p.lru.Remove(fr.elem)
			fr.elem = nil
		}
		fr.pins++
		return fr, nil
	}
	p.stats.Misses++
	if err := p.evictLocked(len(p.frames) + 1 - p.capacity); err != nil {
		return nil, err
	}
	fr := &frame{key: key, Data: make([]byte, PageSize), pins: 1}
	if err := h.readPage(page, fr.Data); err != nil {
		return nil, err
	}
	p.frames[key] = fr
	return fr, nil
}

// Unpin releases one pin; dirty marks the frame as modified so its
// bytes are written back before the frame leaves the pool.
func (p *Pool) Unpin(fr *frame, dirty bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fr.dirty = fr.dirty || dirty
	if fr.pins > 0 {
		fr.pins--
	}
	if fr.pins == 0 && fr.elem == nil {
		fr.elem = p.lru.PushFront(fr)
	}
}

// evictLocked drops up to want unpinned LRU frames, flushing dirty
// ones. Running out of victims is not an error (the pool
// over-allocates instead).
func (p *Pool) evictLocked(want int) error {
	for want > 0 {
		back := p.lru.Back()
		if back == nil {
			return nil
		}
		fr := back.Value.(*frame)
		if fr.dirty {
			if err := fr.key.file.writePage(fr.key.page, fr.Data); err != nil {
				return err
			}
			p.stats.Writeback++
		}
		p.lru.Remove(back)
		delete(p.frames, fr.key)
		p.stats.Evictions++
		want--
	}
	return nil
}

// FlushAll writes every dirty resident frame back to its heap file.
func (p *Pool) FlushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, fr := range p.frames {
		if !fr.dirty {
			continue
		}
		if err := fr.key.file.writePage(fr.key.page, fr.Data); err != nil {
			return err
		}
		p.stats.Writeback++
		fr.dirty = false
	}
	return nil
}

// InvalidateFile drops every resident frame of h. The caller must
// guarantee no frame of h is pinned (the Store serializes writers and
// readers, so this holds there). Dirty frames are discarded — the
// caller has just rewritten the file through the WAL.
func (p *Pool) InvalidateFile(h *heapFile) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for key, fr := range p.frames {
		if key.file != h {
			continue
		}
		if fr.elem != nil {
			p.lru.Remove(fr.elem)
		}
		delete(p.frames, key)
	}
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Resident returns the number of frames currently held.
func (p *Pool) Resident() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.frames)
}
