package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Redo-only write-ahead log. A transaction is a run of walPage
// records (full page images) plus one walSize record (final page
// count of each touched table), terminated by walCommit. The commit
// protocol is:
//
//  1. append all page/size records,
//  2. append walCommit and fsync the log  — the commit point,
//  3. apply the images to the heap files and fsync them,
//  4. checkpoint: truncate the log to zero and fsync it.
//
// On Open the log is scanned with RecoverTail (dropping any torn
// tail), committed transactions are replayed in order onto the heaps
// (redo is idempotent: full images + absolute truncation), the heaps
// are fsynced, and the log is checkpointed. A crash before (2) loses
// the transaction entirely; after (2) the transaction survives via
// redo; after (4) redo is a no-op. Uncommitted trailing records —
// intact but never followed by walCommit — are discarded along with
// the tail.
//
// Record framing: [u32 payload length][u32 CRC32(payload)][payload].
// Payload: [type byte] then, for walPage: [u16 table-name length]
// [name][u32 page number][PageSize image]; for walSize: [u16 name
// length][name][u32 page count]; for walCommit: nothing.

type walRecType byte

const (
	walPage   walRecType = 1
	walSize   walRecType = 2
	walCommit walRecType = 3
)

// maxWALPayload bounds a frame so corrupt length fields cannot force
// a giant allocation: the largest legal payload is a page image plus
// its header.
const maxWALPayload = PageSize + 1 + 2 + 255 + 4

type walRecord struct {
	typ   walRecType
	table string
	page  uint32 // walPage: page number; walSize: page count
	image []byte // walPage only
}

type wal struct {
	f    *os.File
	path string
	buf  []byte
}

// openWAL opens (creating if needed) the log, truncates any torn
// tail, and returns the intact records for replay. The file is left
// positioned at its recovered end.
func openWAL(path string) (*wal, []walRecord, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("storage: open wal: %w", err)
	}
	var recs []walRecord
	if _, _, err := RecoverTail(f, func(r *bufio.Reader) (int64, error) {
		payload, n, err := readFrame(r, maxWALPayload)
		if err != nil {
			return 0, err
		}
		rec, err := decodeWALRecord(payload)
		if err != nil {
			return 0, err
		}
		recs = append(recs, rec)
		return n, nil
	}); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &wal{f: f, path: path}, recs, nil
}

// append frames and writes one record without syncing.
func (w *wal) append(rec walRecord) error {
	w.buf = w.buf[:0]
	w.buf = append(w.buf, byte(rec.typ))
	if rec.typ != walCommit {
		w.buf = binary.LittleEndian.AppendUint16(w.buf, uint16(len(rec.table)))
		w.buf = append(w.buf, rec.table...)
		w.buf = binary.LittleEndian.AppendUint32(w.buf, rec.page)
		if rec.typ == walPage {
			w.buf = append(w.buf, rec.image...)
		}
	}
	return writeFrame(w.f, w.buf)
}

func (w *wal) sync() error {
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("storage: sync wal: %w", err)
	}
	return nil
}

// reset checkpoints the log: everything in it has been durably
// applied to the heaps, so it can be emptied.
func (w *wal) reset() error {
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("storage: checkpoint wal: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("storage: checkpoint wal: %w", err)
	}
	return w.sync()
}

func (w *wal) close() error {
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("storage: close wal: %w", err)
	}
	return nil
}

func decodeWALRecord(payload []byte) (walRecord, error) {
	if len(payload) == 0 {
		return walRecord{}, fmt.Errorf("storage: empty wal payload: %w", ErrTornRecord)
	}
	rec := walRecord{typ: walRecType(payload[0])}
	body := payload[1:]
	switch rec.typ {
	case walCommit:
		if len(body) != 0 {
			return walRecord{}, fmt.Errorf("storage: commit record with body: %w", ErrTornRecord)
		}
		return rec, nil
	case walPage, walSize:
		if len(body) < 2 {
			return walRecord{}, fmt.Errorf("storage: short wal record: %w", ErrTornRecord)
		}
		nameLen := int(binary.LittleEndian.Uint16(body))
		body = body[2:]
		if len(body) < nameLen+4 {
			return walRecord{}, fmt.Errorf("storage: short wal record: %w", ErrTornRecord)
		}
		rec.table = string(body[:nameLen])
		rec.page = binary.LittleEndian.Uint32(body[nameLen:])
		body = body[nameLen+4:]
		if rec.typ == walPage {
			if len(body) != PageSize {
				return walRecord{}, fmt.Errorf("storage: wal page image is %d bytes: %w", len(body), ErrTornRecord)
			}
			rec.image = append([]byte(nil), body...)
		} else if len(body) != 0 {
			return walRecord{}, fmt.Errorf("storage: wal size record with %d trailing bytes: %w", len(body), ErrTornRecord)
		}
		return rec, nil
	default:
		return walRecord{}, fmt.Errorf("storage: unknown wal record type %d: %w", rec.typ, ErrTornRecord)
	}
}

// writeFrame appends one [len][crc][payload] frame to f.
func writeFrame(f *os.File, payload []byte) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := f.Write(hdr[:]); err != nil {
		return fmt.Errorf("storage: append frame: %w", err)
	}
	if _, err := f.Write(payload); err != nil {
		return fmt.Errorf("storage: append frame: %w", err)
	}
	return nil
}

// readFrame consumes one frame, validating length bound and CRC.
// io.EOF at a frame boundary is a clean end; anything else partial or
// invalid is ErrTornRecord.
func readFrame(r *bufio.Reader, maxLen uint32) ([]byte, int64, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, 0, io.EOF
		}
		return nil, 0, fmt.Errorf("storage: frame header: %w", ErrTornRecord)
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	crc := binary.LittleEndian.Uint32(hdr[4:8])
	if n > maxLen {
		return nil, 0, fmt.Errorf("storage: frame claims %d bytes: %w", n, ErrTornRecord)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, 0, fmt.Errorf("storage: frame payload: %w", ErrTornRecord)
	}
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, 0, fmt.Errorf("storage: frame checksum: %w", ErrTornRecord)
	}
	return payload, int64(8 + len(payload)), nil
}
