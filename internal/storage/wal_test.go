package storage

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func walImage(pageNo uint32) []byte {
	img := make([]byte, PageSize)
	initPage(img, pageNo)
	pageInsert(img, []byte("wal-payload"))
	finalizePage(img)
	return img
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), walName)
	w, recs, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh wal has %d records", len(recs))
	}
	img := walImage(0)
	for _, rec := range []walRecord{
		{typ: walPage, table: "orders", page: 0, image: img},
		{typ: walSize, table: "orders", page: 1},
		{typ: walCommit},
	} {
		if err := w.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}

	w2, recs, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.close()
	if len(recs) != 3 {
		t.Fatalf("recovered %d records, want 3", len(recs))
	}
	if recs[0].typ != walPage || recs[0].table != "orders" || recs[0].page != 0 || !bytes.Equal(recs[0].image, img) {
		t.Fatalf("page record mangled: %+v", recs[0])
	}
	if recs[1].typ != walSize || recs[1].table != "orders" || recs[1].page != 1 {
		t.Fatalf("size record mangled: %+v", recs[1])
	}
	if recs[2].typ != walCommit {
		t.Fatalf("commit record mangled: %+v", recs[2])
	}
}

func TestWALTornTailDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), walName)
	w, _, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append(walRecord{typ: walSize, table: "t", page: 2}); err != nil {
		t.Fatal(err)
	}
	// Simulate dying mid-append: a partial frame header.
	if _, err := w.f.Write([]byte{0xFF, 0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	w.close()

	w2, recs, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.close()
	if len(recs) != 1 || recs[0].typ != walSize {
		t.Fatalf("recovered %+v, want the single intact size record", recs)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(8 + 1 + 2 + 1 + 4); fi.Size() != want {
		t.Fatalf("wal size %d after recovery, want %d (torn bytes gone)", fi.Size(), want)
	}
}

func TestWALReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), walName)
	w, _, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.close()
	if err := w.append(walRecord{typ: walCommit}); err != nil {
		t.Fatal(err)
	}
	if err := w.reset(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 0 {
		t.Fatalf("wal not empty after checkpoint: %d bytes", fi.Size())
	}
	// Appends after a checkpoint start from offset zero.
	if err := w.append(walRecord{typ: walSize, table: "t", page: 0}); err != nil {
		t.Fatal(err)
	}
	w2, recs, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	w2.close()
	if len(recs) != 1 {
		t.Fatalf("recovered %d records after post-checkpoint append, want 1", len(recs))
	}
}

func TestDecodeWALRecordRejectsMalformed(t *testing.T) {
	size := func(table string, n uint32, extra []byte) []byte {
		p := []byte{byte(walSize)}
		p = binary.LittleEndian.AppendUint16(p, uint16(len(table)))
		p = append(p, table...)
		p = binary.LittleEndian.AppendUint32(p, n)
		return append(p, extra...)
	}
	cases := map[string][]byte{
		"empty":             {},
		"commit-with-body":  {byte(walCommit), 1},
		"short-header":      {byte(walPage), 5},
		"short-name":        {byte(walPage), 200, 0, 'a', 'b'},
		"short-page-image":  append([]byte{byte(walPage), 1, 0, 't'}, 0, 0, 0, 0, 1, 2, 3),
		"size-with-trailer": size("t", 1, []byte{9}),
		"unknown-type":      {42},
	}
	for name, payload := range cases {
		if _, err := decodeWALRecord(payload); !errors.Is(err, ErrTornRecord) {
			t.Errorf("%s: err = %v, want ErrTornRecord", name, err)
		}
	}
}
