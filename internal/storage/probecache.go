package storage

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"unmasque/internal/sqldb"
)

// ProbeCache is the durable, cross-job tier of the run-memoization
// cache: a single append-only log mapping (namespace, fingerprint)
// keys to completed application-execution outcomes — result columns
// and rows, or a deterministic application error. It survives daemon
// restarts and is shared across jobs and tenants; the namespace keeps
// different executables from ever seeing each other's entries even
// when their database fingerprints collide (same instance, different
// app ⇒ different E output).
//
// Record framing is [u32 len][u32 crc][payload] — the same framing as
// the WAL — recovered through RecoverTail, so a crash mid-append
// costs at most the record being written. Payload:
//
//	[32]  key = sha256(namespace ‖ 0x00 ‖ fingerprint)
//	[u8]  error kind (0 none, 1 sqldb.ErrNoSuchTable, 2 app error)
//	[u32] error message length, message bytes
//	[u8]  has-result flag
//	when set: [u8 aggEmptyInput] [u16 ncols] (len-prefixed column
//	names) [u32 nrows] row records (codec.go)
//
// Timeouts and context cancellations are never handed to Put by the
// scheduler (they are environmental, not properties of (E, D)), so
// every record is a deterministic outcome safe to replay forever.
type ProbeCache struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	mem    map[cacheKey]*cacheValue
	writes int64
	closed bool
	err    error // sticky append error: cache degrades to read-only
}

type cacheKey [sha256.Size]byte

type cacheValue struct {
	errKind byte
	errMsg  string
	res     *sqldb.Result // nil when absent
}

const (
	errKindNone        = 0
	errKindNoSuchTable = 1
	errKindApp         = 2
)

// maxCachePayload bounds one record: keep it generous (a full result
// over a large instance) but finite so a corrupt length field cannot
// OOM recovery.
const maxCachePayload = 1 << 28 // 256 MiB

// OpenProbeCache opens (creating if needed) the cache log at path,
// truncating any torn tail and loading all intact records.
func OpenProbeCache(path string) (*ProbeCache, error) {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("storage: open probe cache: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open probe cache: %w", err)
	}
	pc := &ProbeCache{f: f, path: path, mem: make(map[cacheKey]*cacheValue)}
	if _, _, err := RecoverTail(f, func(r *bufio.Reader) (int64, error) {
		payload, n, err := readFrame(r, maxCachePayload)
		if err != nil {
			return 0, err
		}
		key, val, err := decodeCacheRecord(payload)
		if err != nil {
			return 0, err
		}
		pc.mem[key] = val
		return n, nil
	}); err != nil {
		f.Close()
		return nil, err
	}
	return pc, nil
}

// Len returns the number of distinct cached outcomes.
func (pc *ProbeCache) Len() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return len(pc.mem)
}

// Close releases the log handle, surfacing any sticky append error.
// A nil receiver (no durable cache configured) is a no-op.
func (pc *ProbeCache) Close() error {
	if pc == nil {
		return nil
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.closed {
		return pc.err
	}
	pc.closed = true
	cerr := pc.f.Close()
	if pc.err != nil {
		return pc.err
	}
	if cerr != nil {
		return fmt.Errorf("storage: close probe cache: %w", cerr)
	}
	return nil
}

func nsKey(namespace string, fp sqldb.Fingerprint) cacheKey {
	h := sha256.New()
	h.Write([]byte(namespace))
	h.Write([]byte{0})
	h.Write(fp[:])
	var key cacheKey
	h.Sum(key[:0])
	return key
}

func (pc *ProbeCache) get(key cacheKey) (*sqldb.Result, error, bool) {
	pc.mu.Lock()
	val, ok := pc.mem[key]
	pc.mu.Unlock()
	if !ok {
		return nil, nil, false
	}
	var res *sqldb.Result
	if val.res != nil {
		res = val.res.Clone()
	}
	switch val.errKind {
	case errKindNoSuchTable:
		return res, &cachedErr{msg: val.errMsg, base: sqldb.ErrNoSuchTable}, true
	case errKindApp:
		return res, &cachedErr{msg: val.errMsg}, true
	default:
		return res, nil, true
	}
}

// cachedErr rehydrates a persisted application error with its exact
// message while keeping errors.Is classification (the scheduler and
// from-clause phase branch on sqldb.ErrNoSuchTable) working across a
// save/load cycle.
type cachedErr struct {
	msg  string
	base error
}

func (e *cachedErr) Error() string { return e.msg }
func (e *cachedErr) Unwrap() error { return e.base }

func (pc *ProbeCache) put(key cacheKey, res *sqldb.Result, err error) {
	val := &cacheValue{}
	switch {
	case err == nil:
		val.errKind = errKindNone
	case errors.Is(err, sqldb.ErrNoSuchTable):
		val.errKind = errKindNoSuchTable
		val.errMsg = err.Error()
	default:
		val.errKind = errKindApp
		val.errMsg = err.Error()
	}
	if res != nil {
		val.res = res.Clone()
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.closed || pc.err != nil {
		return
	}
	if _, ok := pc.mem[key]; ok {
		return // idempotent: first writer wins, outcomes are deterministic
	}
	pc.mem[key] = val
	if werr := pc.append(key, val); werr != nil {
		// Degrade to read-only: in-memory hits keep working, the loss
		// is durability of new entries. Surfaced at Close.
		pc.err = werr
	}
	pc.writes++
}

// append must be called with pc.mu held.
func (pc *ProbeCache) append(key cacheKey, val *cacheValue) error {
	payload := make([]byte, 0, 64)
	payload = append(payload, key[:]...)
	payload = append(payload, val.errKind)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(val.errMsg)))
	payload = append(payload, val.errMsg...)
	if val.res == nil {
		payload = append(payload, 0)
	} else {
		payload = append(payload, 1)
		if val.res.AggEmptyInput() {
			payload = append(payload, 1)
		} else {
			payload = append(payload, 0)
		}
		payload = binary.LittleEndian.AppendUint16(payload, uint16(len(val.res.Columns)))
		for _, c := range val.res.Columns {
			payload = binary.LittleEndian.AppendUint16(payload, uint16(len(c)))
			payload = append(payload, c...)
		}
		payload = binary.LittleEndian.AppendUint32(payload, uint32(len(val.res.Rows)))
		for _, row := range val.res.Rows {
			payload = appendRow(payload, row)
		}
	}
	if len(payload) > maxCachePayload {
		return fmt.Errorf("storage: probe-cache record too large (%d bytes)", len(payload))
	}
	if err := writeFrame(pc.f, payload); err != nil {
		return err
	}
	if err := pc.f.Sync(); err != nil {
		return fmt.Errorf("storage: sync probe cache: %w", err)
	}
	return nil
}

func decodeCacheRecord(payload []byte) (cacheKey, *cacheValue, error) {
	var key cacheKey
	if len(payload) < sha256.Size+1+4 {
		return key, nil, fmt.Errorf("storage: short cache record: %w", ErrTornRecord)
	}
	copy(key[:], payload)
	off := sha256.Size
	val := &cacheValue{errKind: payload[off]}
	off++
	msgLen := int(binary.LittleEndian.Uint32(payload[off:]))
	off += 4
	if off+msgLen+1 > len(payload) {
		return key, nil, fmt.Errorf("storage: short cache error message: %w", ErrTornRecord)
	}
	val.errMsg = string(payload[off : off+msgLen])
	off += msgLen
	hasRes := payload[off]
	off++
	if hasRes == 0 {
		if off != len(payload) {
			return key, nil, fmt.Errorf("storage: trailing cache bytes: %w", ErrTornRecord)
		}
		return key, val, nil
	}
	if off+1+2 > len(payload) {
		return key, nil, fmt.Errorf("storage: short cache result header: %w", ErrTornRecord)
	}
	aggEmpty := payload[off] == 1
	off++
	ncols := int(binary.LittleEndian.Uint16(payload[off:]))
	off += 2
	cols := make([]string, 0, ncols)
	for i := 0; i < ncols; i++ {
		if off+2 > len(payload) {
			return key, nil, fmt.Errorf("storage: short cache column: %w", ErrTornRecord)
		}
		n := int(binary.LittleEndian.Uint16(payload[off:]))
		off += 2
		if off+n > len(payload) {
			return key, nil, fmt.Errorf("storage: short cache column name: %w", ErrTornRecord)
		}
		cols = append(cols, string(payload[off:off+n]))
		off += n
	}
	if off+4 > len(payload) {
		return key, nil, fmt.Errorf("storage: short cache row count: %w", ErrTornRecord)
	}
	nrows := int(binary.LittleEndian.Uint32(payload[off:]))
	off += 4
	rows := make([]sqldb.Row, 0, nrows)
	for i := 0; i < nrows; i++ {
		if off+2 > len(payload) {
			return key, nil, fmt.Errorf("storage: short cache row: %w", ErrTornRecord)
		}
		rcols := int(binary.LittleEndian.Uint16(payload[off:]))
		roff := off + 2
		row := make(sqldb.Row, 0, rcols)
		for c := 0; c < rcols; c++ {
			v, next, err := decodeValue(payload, roff)
			if err != nil {
				return key, nil, err
			}
			row = append(row, v)
			roff = next
		}
		rows = append(rows, row)
		off = roff
	}
	if off != len(payload) {
		return key, nil, fmt.Errorf("storage: trailing cache bytes: %w", ErrTornRecord)
	}
	val.res = sqldb.RestoreResult(cols, rows, aggEmpty)
	return key, val, nil
}

// NSCache is one namespace's view of a ProbeCache. It implements
// core.ProbeCache (structurally — core defines the interface, this
// package only matches it).
type NSCache struct {
	pc *ProbeCache
	ns string
}

// Namespace scopes the cache to one logical executable. Use
// AppNamespace for registry-built applications.
func (pc *ProbeCache) Namespace(ns string) *NSCache {
	return &NSCache{pc: pc, ns: ns}
}

// Get returns the cached outcome for fp in this namespace.
func (c *NSCache) Get(fp sqldb.Fingerprint) (*sqldb.Result, error, bool) {
	return c.pc.get(nsKey(c.ns, fp))
}

// Put records the outcome for fp. First write wins; re-puts of the
// same key are ignored (outcomes are deterministic by construction).
func (c *NSCache) Put(fp sqldb.Fingerprint, res *sqldb.Result, err error) {
	c.pc.put(nsKey(c.ns, fp), res, err)
}

// AppNamespace is the canonical namespace for a registry application
// built at a given seed: CLI and daemon submissions of the same
// (app, seed) pair share probe results.
func AppNamespace(app string, seed int64) string {
	return "app/" + app + "#seed=" + strconv.FormatInt(seed, 10)
}
