package storage

import (
	"fmt"
	"path/filepath"
	"testing"
)

// testHeap builds a heap file of npages finalized pages, each holding
// one "page-N" record.
func testHeap(t *testing.T, npages int) *heapFile {
	t.Helper()
	h, err := openHeap(filepath.Join(t.TempDir(), "t.heap"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h.close() })
	for p := 0; p < npages; p++ {
		img := make([]byte, PageSize)
		initPage(img, uint32(p))
		if !pageInsert(img, []byte(fmt.Sprintf("page-%d", p))) {
			t.Fatal("insert failed")
		}
		finalizePage(img)
		if err := h.writePage(p, img); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

func getUnpin(t *testing.T, p *Pool, h *heapFile, page int) {
	t.Helper()
	fr, err := p.Get(h, page)
	if err != nil {
		t.Fatalf("Get(%d): %v", page, err)
	}
	p.Unpin(fr, false)
}

func TestPoolHitMiss(t *testing.T) {
	h := testHeap(t, 2)
	p := NewPool(4)
	getUnpin(t, p, h, 0)
	getUnpin(t, p, h, 0)
	getUnpin(t, p, h, 1)
	s := p.Stats()
	if s.Hits != 1 || s.Misses != 2 || s.Evictions != 0 {
		t.Fatalf("stats = %+v, want 1 hit / 2 misses / 0 evictions", s)
	}
	if p.Resident() != 2 {
		t.Fatalf("resident = %d, want 2", p.Resident())
	}
}

func TestPoolLRUEvictionOrder(t *testing.T) {
	h := testHeap(t, 3)
	p := NewPool(2)
	getUnpin(t, p, h, 0)
	getUnpin(t, p, h, 1)
	getUnpin(t, p, h, 2) // evicts 0, the least recently used
	if s := p.Stats(); s.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions)
	}
	getUnpin(t, p, h, 1) // still resident
	getUnpin(t, p, h, 0) // was evicted → miss
	s := p.Stats()
	if s.Hits != 1 || s.Misses != 4 {
		t.Fatalf("stats = %+v, want 1 hit / 4 misses", s)
	}
}

func TestPoolPinnedFramesSurviveAndOverAllocate(t *testing.T) {
	h := testHeap(t, 3)
	p := NewPool(1)
	fr0, err := p.Get(h, 0)
	if err != nil {
		t.Fatal(err)
	}
	// With the only slot pinned the pool must over-allocate, not fail.
	fr1, err := p.Get(h, 1)
	if err != nil {
		t.Fatalf("Get with all frames pinned: %v", err)
	}
	if p.Resident() != 2 {
		t.Fatalf("resident = %d, want over-allocated 2", p.Resident())
	}
	p.Unpin(fr0, false)
	p.Unpin(fr1, false)
	// The excess shrinks back as soon as a new fault needs room.
	getUnpin(t, p, h, 2)
	if p.Resident() > 1 {
		t.Fatalf("resident = %d after release, want 1", p.Resident())
	}
	// Re-pinning a resident frame removes it from the LRU (hit path).
	fr2, err := p.Get(h, 2)
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(fr2, false)
}

func TestPoolDirtyWritebackOnEviction(t *testing.T) {
	h := testHeap(t, 2)
	p := NewPool(1)
	fr, err := p.Get(h, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !pageInsert(fr.Data, []byte("added-in-pool")) {
		t.Fatal("insert failed")
	}
	finalizePage(fr.Data)
	p.Unpin(fr, true)
	getUnpin(t, p, h, 1) // evicts dirty page 0 → writeback
	if s := p.Stats(); s.Writeback != 1 {
		t.Fatalf("writeback = %d, want 1", s.Writeback)
	}
	// The mutation must be on disk now.
	buf := make([]byte, PageSize)
	if err := h.readPage(0, buf); err != nil {
		t.Fatal(err)
	}
	if pageCount(buf) != 2 || string(pageRecord(buf, 1)) != "added-in-pool" {
		t.Fatal("dirty frame not written back on eviction")
	}
}

func TestPoolFlushAll(t *testing.T) {
	h := testHeap(t, 1)
	p := NewPool(4)
	fr, err := p.Get(h, 0)
	if err != nil {
		t.Fatal(err)
	}
	pageInsert(fr.Data, []byte("flushed"))
	finalizePage(fr.Data)
	p.Unpin(fr, true)
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	if err := h.readPage(0, buf); err != nil {
		t.Fatal(err)
	}
	if string(pageRecord(buf, 1)) != "flushed" {
		t.Fatal("FlushAll did not persist the dirty frame")
	}
	// A second flush has nothing to do.
	before := p.Stats().Writeback
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if p.Stats().Writeback != before {
		t.Fatal("clean frame flushed twice")
	}
}

func TestPoolInvalidateFile(t *testing.T) {
	ha := testHeap(t, 2)
	hb := testHeap(t, 1)
	p := NewPool(8)
	getUnpin(t, p, ha, 0)
	getUnpin(t, p, ha, 1)
	getUnpin(t, p, hb, 0)
	p.InvalidateFile(ha)
	if p.Resident() != 1 {
		t.Fatalf("resident = %d after invalidate, want 1 (hb only)", p.Resident())
	}
	// hb's frame is still served from memory.
	fr, err := p.Get(hb, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(fr, false)
	if s := p.Stats(); s.Hits != 1 {
		t.Fatalf("hits = %d, want 1", s.Hits)
	}
}
