// Package storage is the disk-backed tier of the engine: a paged,
// WAL-protected table store plus a durable, fingerprint-keyed probe
// cache shared across extraction jobs.
//
// The in-memory engine (internal/sqldb) caps database scale at RAM
// and loses every memoized application execution when a job ends.
// This package removes both limits without touching the hot paths:
//
//   - Table rows live in slotted heap pages (page.go, heap.go), one
//     heap file per table, faulted into memory on first access
//     through a fixed-size buffer pool with pin/unpin and LRU
//     eviction (bufpool.go). sqldb sees the store only through the
//     narrow TableStore interface, so the engine itself stays free of
//     file I/O (lint rule GL010).
//   - All heap mutations go through a write-ahead log (wal.go) with
//     redo-only page-image records: a transaction's frames are
//     appended and fsynced before any heap byte changes, so a crash
//     at any point either replays the committed transaction on the
//     next Open or leaves the previous state intact. Torn WAL tails
//     are truncated with the same helper (tail.go) the service tier's
//     JSONL job store uses.
//   - The probe cache (probecache.go) persists completed application
//     executions keyed by (namespace, sqldb.Fingerprint): result
//     columns, rows and deterministic application errors survive
//     daemon restarts and are shared across jobs and tenants, so two
//     jobs extracting from the same executable pay for its probes
//     once.
//
// Formats and the recovery protocol are documented in DESIGN.md §13.
package storage

import "errors"

// PageSize is the fixed size of one heap page in bytes. 8 KiB keeps
// the slot directory's 16-bit offsets comfortable and matches the
// page size of the reference systems the ROADMAP names.
const PageSize = 8192

// Errors surfaced by the storage tier.
var (
	// ErrTornRecord marks a partially written record at the tail of an
	// append-only file — the expected residue of a crash mid-append.
	// RecoverTail converts it into a truncation, not a failure.
	ErrTornRecord = errors.New("storage: torn record")

	// ErrCorruptPage is returned when a heap page fails its magic,
	// page-number or checksum validation.
	ErrCorruptPage = errors.New("storage: corrupt page")

	// ErrRowTooLarge is returned when a single encoded row cannot fit
	// in one page (the format has no overflow chains).
	ErrRowTooLarge = errors.New("storage: row exceeds page capacity")

	// ErrNoTable is returned for operations on tables absent from the
	// store catalog.
	ErrNoTable = errors.New("storage: no such table")

	// errCrashed is the outcome of an injected crash point (test
	// hooks); it marks the store as unusable exactly as a kill would.
	errCrashed = errors.New("storage: simulated crash")
)

// Options tunes a Store.
type Options struct {
	// PoolPages is the buffer pool capacity in pages (default 256,
	// i.e. 2 MiB of cached heap data).
	PoolPages int
}

func (o *Options) normalize() {
	if o.PoolPages <= 0 {
		o.PoolPages = 256
	}
}
