package rubis

import (
	"context"
	"testing"

	"unmasque/internal/sqlparser"
)

func TestServletsMatchGroundTruth(t *testing.T) {
	db := NewDatabase(11)
	for _, sv := range Servlets() {
		sv := sv
		t.Run(sv.Name, func(t *testing.T) {
			got, err := sv.Exe.Run(context.Background(), db)
			if err != nil {
				t.Fatalf("imperative run: %v", err)
			}
			if !got.Populated() {
				t.Fatal("empty result on the synthetic instance")
			}
			stmt, err := sqlparser.Parse(sv.Exe.GroundTruthSQL())
			if err != nil {
				t.Fatalf("ground truth parse: %v", err)
			}
			want, err := db.Execute(context.Background(), stmt)
			if err != nil {
				t.Fatalf("ground truth run: %v", err)
			}
			if !got.EqualUnordered(want) {
				t.Fatalf("imperative (%d rows) and SQL (%d rows) diverge", got.RowCount(), want.RowCount())
			}
		})
	}
}

func TestServletCount(t *testing.T) {
	if len(Servlets()) != 8 {
		t.Errorf("expected 8 servlets, got %d", len(Servlets()))
	}
}
