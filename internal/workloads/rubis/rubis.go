// Package rubis reproduces the paper's RUBiS experiment (Section 6.3;
// per-function details live in the technical report — experiment E8
// of DESIGN.md): the auction-site benchmark's read-side servlets
// re-written as imperative Go over the RUBiS schema.
package rubis

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"unmasque/internal/app"
	"unmasque/internal/sqldb"
)

// Schemas returns the auction-site tables.
func Schemas() []sqldb.TableSchema {
	id := func(name string) sqldb.Column {
		return sqldb.Column{Name: name, Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30}
	}
	text := func(name string, n int) sqldb.Column {
		return sqldb.Column{Name: name, Type: sqldb.TText, MaxLen: n}
	}
	money := func(name string) sqldb.Column {
		return sqldb.Column{Name: name, Type: sqldb.TFloat, Precision: 2, MinInt: 0, MaxInt: 100000}
	}
	return []sqldb.TableSchema{
		{
			Name:       "regions",
			Columns:    []sqldb.Column{id("id"), text("name", 40)},
			PrimaryKey: []string{"id"},
		},
		{
			Name:       "categories",
			Columns:    []sqldb.Column{id("id"), text("name", 40)},
			PrimaryKey: []string{"id"},
		},
		{
			Name: "users",
			Columns: []sqldb.Column{
				id("id"), text("nickname", 30), text("email", 60),
				{Name: "rating", Type: sqldb.TInt, MinInt: -10, MaxInt: 100},
				id("region_id"),
			},
			PrimaryKey:  []string{"id"},
			ForeignKeys: []sqldb.ForeignKey{{Column: "region_id", RefTable: "regions", RefColumn: "id"}},
		},
		{
			Name: "items",
			Columns: []sqldb.Column{
				id("id"), text("name", 80), text("description", 120),
				money("initial_price"), money("reserve_price"),
				{Name: "quantity", Type: sqldb.TInt, MinInt: 1, MaxInt: 50},
				{Name: "end_date", Type: sqldb.TDate, MinInt: dayOf("2009-01-01"), MaxInt: dayOf("2010-12-31")},
				id("seller_id"), id("category_id"),
			},
			PrimaryKey: []string{"id"},
			ForeignKeys: []sqldb.ForeignKey{
				{Column: "seller_id", RefTable: "users", RefColumn: "id"},
				{Column: "category_id", RefTable: "categories", RefColumn: "id"},
			},
		},
		{
			Name: "bids",
			Columns: []sqldb.Column{
				id("id"), id("user_id"), id("item_id"), money("bid"),
				{Name: "bid_date", Type: sqldb.TDate, MinInt: dayOf("2009-01-01"), MaxInt: dayOf("2010-12-31")},
			},
			PrimaryKey: []string{"id"},
			ForeignKeys: []sqldb.ForeignKey{
				{Column: "user_id", RefTable: "users", RefColumn: "id"},
				{Column: "item_id", RefTable: "items", RefColumn: "id"},
			},
		},
		{
			Name: "comments",
			Columns: []sqldb.Column{
				id("id"), id("from_user_id"), id("to_user_id"),
				{Name: "rating", Type: sqldb.TInt, MinInt: -5, MaxInt: 5},
				text("comment", 120),
			},
			PrimaryKey: []string{"id"},
			ForeignKeys: []sqldb.ForeignKey{
				{Column: "from_user_id", RefTable: "users", RefColumn: "id"},
				{Column: "to_user_id", RefTable: "users", RefColumn: "id"},
			},
		},
	}
}

func dayOf(s string) int64 { return sqldb.MustDate(s).I }

var (
	regionNames   = []string{"AZ--Phoenix", "CA--Los Angeles", "CA--San Francisco", "NY--New York", "TX--Houston", "WA--Seattle"}
	categoryNames = []string{"Antiques", "Books", "Computers", "Electronics", "Jewelry", "Movies", "Music", "Sports", "Toys"}
	itemWords     = []string{"vintage", "rare", "signed", "boxed", "mint", "classic", "limited", "sealed"}
)

// NewDatabase builds the synthetic instance.
func NewDatabase(seed int64) *sqldb.Database {
	db := sqldb.NewDatabase()
	for _, s := range Schemas() {
		if err := db.CreateTable(s); err != nil {
			panic(err)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	i, f, s := sqldb.NewInt, sqldb.NewFloat, sqldb.NewText
	d := func(off int) sqldb.Value { return sqldb.NewDate(dayOf("2009-01-01") + int64(off)) }
	const users, items, bids, comments = 120, 300, 1200, 400
	for r, n := range regionNames {
		ins(db, "regions", i(int64(r+1)), s(n))
	}
	for c, n := range categoryNames {
		ins(db, "categories", i(int64(c+1)), s(n))
	}
	for u := 1; u <= users; u++ {
		ins(db, "users", i(int64(u)), s(fmt.Sprintf("user%d", u)), s(fmt.Sprintf("u%d@rubis.net", u)),
			i(int64(rng.Intn(111)-10)), i(int64(1+rng.Intn(len(regionNames)))))
	}
	for it := 1; it <= items; it++ {
		name := fmt.Sprintf("%s %s %d", itemWords[rng.Intn(len(itemWords))], itemWords[rng.Intn(len(itemWords))], it)
		price := 1 + float64(rng.Intn(99900))/100
		ins(db, "items", i(int64(it)), s(name), s("description of "+name),
			f(price), f(price*1.5), i(int64(1+rng.Intn(10))), d(rng.Intn(700)),
			i(int64(1+rng.Intn(users))), i(int64(1+rng.Intn(len(categoryNames)))))
	}
	for b := 1; b <= bids; b++ {
		ins(db, "bids", i(int64(b)), i(int64(1+rng.Intn(users))), i(int64(1+rng.Intn(items))),
			f(1+float64(rng.Intn(150000))/100), d(rng.Intn(700)))
	}
	for c := 1; c <= comments; c++ {
		ins(db, "comments", i(int64(c)), i(int64(1+rng.Intn(users))), i(int64(1+rng.Intn(users))),
			i(int64(rng.Intn(11)-5)), s("comment body"))
	}
	return db
}

func ins(db *sqldb.Database, table string, vals ...sqldb.Value) {
	if err := db.Insert(table, vals...); err != nil {
		panic(fmt.Sprintf("rubis generator: %v", err))
	}
}

// Servlet couples one imperative routine with its RUBiS-style name.
type Servlet struct {
	Name string
	Exe  *app.ImperativeExecutable
}

// Servlets returns the eight in-scope read-side functions.
func Servlets() []Servlet {
	mk := func(name, truth string, fn app.ImperativeFunc) Servlet {
		return Servlet{Name: name, Exe: app.NewImperativeExecutable("rubis/"+name, fn, truth)}
	}
	return []Servlet{
		mk("SearchItemsByCategory",
			`select items.name, items.initial_price, categories.name as category
			 from items, categories
			 where items.category_id = categories.id and categories.name = 'Computers'`,
			func(ctx context.Context, db *sqldb.Database) (*sqldb.Result, error) {
				items, cats, err := twoTables(db, "items", "categories")
				if err != nil {
					return nil, err
				}
				inm, ipr, icat := items.Schema.ColumnIndex("name"), items.Schema.ColumnIndex("initial_price"), items.Schema.ColumnIndex("category_id")
				cid, cnm := cats.Schema.ColumnIndex("id"), cats.Schema.ColumnIndex("name")
				res := &sqldb.Result{Columns: []string{"name", "initial_price", "category"}}
				for _, c := range cats.Rows {
					if c[cnm].S != "Computers" {
						continue
					}
					for _, it := range items.Rows {
						if sqldb.Equal(it[icat], c[cid]) {
							res.Rows = append(res.Rows, sqldb.Row{it[inm], it[ipr], c[cnm]})
						}
					}
				}
				return res, nil
			}),
		mk("ViewBidHistory",
			`select users.nickname, bids.bid, bids.bid_date from users, bids
			 where bids.user_id = users.id and bids.bid >= 1000
			 order by bids.bid desc limit 20`,
			func(ctx context.Context, db *sqldb.Database) (*sqldb.Result, error) {
				users, bids, err := twoTables(db, "users", "bids")
				if err != nil {
					return nil, err
				}
				unick, uid := users.Schema.ColumnIndex("nickname"), users.Schema.ColumnIndex("id")
				buid, bamt, bdate := bids.Schema.ColumnIndex("user_id"), bids.Schema.ColumnIndex("bid"), bids.Schema.ColumnIndex("bid_date")
				var rows []sqldb.Row
				for _, b := range bids.Rows {
					if b[bamt].Null || b[bamt].F < 1000 {
						continue
					}
					for _, u := range users.Rows {
						if sqldb.Equal(u[uid], b[buid]) {
							rows = append(rows, sqldb.Row{u[unick], b[bamt], b[bdate]})
						}
					}
				}
				sort.SliceStable(rows, func(a, b int) bool { return rows[a][1].F > rows[b][1].F })
				if len(rows) > 20 {
					rows = rows[:20]
				}
				return &sqldb.Result{Columns: []string{"nickname", "bid", "bid_date"}, Rows: rows}, nil
			}),
		mk("BidsPerItem",
			`select items.name, count(*) as bids from items, bids
			 where bids.item_id = items.id group by items.name`,
			func(ctx context.Context, db *sqldb.Database) (*sqldb.Result, error) {
				items, bids, err := twoTables(db, "items", "bids")
				if err != nil {
					return nil, err
				}
				iid, inm := items.Schema.ColumnIndex("id"), items.Schema.ColumnIndex("name")
				bitem := bids.Schema.ColumnIndex("item_id")
				counts := map[string]int64{}
				var order []string
				for _, it := range items.Rows {
					for _, b := range bids.Rows {
						if sqldb.Equal(b[bitem], it[iid]) {
							if _, ok := counts[it[inm].S]; !ok {
								order = append(order, it[inm].S)
							}
							counts[it[inm].S]++
						}
					}
				}
				res := &sqldb.Result{Columns: []string{"name", "bids"}}
				for _, n := range order {
					res.Rows = append(res.Rows, sqldb.Row{sqldb.NewText(n), sqldb.NewInt(counts[n])})
				}
				return res, nil
			}),
		mk("MaxBidPerItem",
			`select item_id, max(bid) as top_bid from bids group by item_id`,
			func(ctx context.Context, db *sqldb.Database) (*sqldb.Result, error) {
				bids, err := db.Table("bids")
				if err != nil {
					return nil, err
				}
				bitem, bamt := bids.Schema.ColumnIndex("item_id"), bids.Schema.ColumnIndex("bid")
				best := map[int64]float64{}
				var order []int64
				for _, b := range bids.Rows {
					k := b[bitem].I
					if cur, ok := best[k]; !ok || b[bamt].F > cur {
						if !ok {
							order = append(order, k)
						}
						best[k] = b[bamt].F
					}
				}
				res := &sqldb.Result{Columns: []string{"item_id", "top_bid"}}
				for _, k := range order {
					res.Rows = append(res.Rows, sqldb.Row{sqldb.NewInt(k), sqldb.NewFloat(best[k])})
				}
				return res, nil
			}),
		mk("UsersPerRegion",
			`select regions.name, count(*) as members from regions, users
			 where users.region_id = regions.id group by regions.name order by regions.name`,
			func(ctx context.Context, db *sqldb.Database) (*sqldb.Result, error) {
				regions, users, err := twoTables(db, "regions", "users")
				if err != nil {
					return nil, err
				}
				rid, rnm := regions.Schema.ColumnIndex("id"), regions.Schema.ColumnIndex("name")
				ureg := users.Schema.ColumnIndex("region_id")
				counts := map[string]int64{}
				for _, r := range regions.Rows {
					for _, u := range users.Rows {
						if sqldb.Equal(u[ureg], r[rid]) {
							counts[r[rnm].S]++
						}
					}
				}
				var names []string
				for n := range counts {
					names = append(names, n)
				}
				sort.Strings(names)
				res := &sqldb.Result{Columns: []string{"name", "members"}}
				for _, n := range names {
					res.Rows = append(res.Rows, sqldb.Row{sqldb.NewText(n), sqldb.NewInt(counts[n])})
				}
				return res, nil
			}),
		mk("ReputableUsers",
			`select nickname, rating from users where rating >= 50 order by rating desc`,
			func(ctx context.Context, db *sqldb.Database) (*sqldb.Result, error) {
				users, err := db.Table("users")
				if err != nil {
					return nil, err
				}
				unick, urate := users.Schema.ColumnIndex("nickname"), users.Schema.ColumnIndex("rating")
				var rows []sqldb.Row
				for _, u := range users.Rows {
					if !u[urate].Null && u[urate].I >= 50 {
						rows = append(rows, sqldb.Row{u[unick], u[urate]})
					}
				}
				sort.SliceStable(rows, func(a, b int) bool { return rows[a][1].I > rows[b][1].I })
				return &sqldb.Result{Columns: []string{"nickname", "rating"}, Rows: rows}, nil
			}),
		mk("SearchItemsByName",
			`select id, name, initial_price from items where name like '%vintage%'`,
			func(ctx context.Context, db *sqldb.Database) (*sqldb.Result, error) {
				items, err := db.Table("items")
				if err != nil {
					return nil, err
				}
				iid, inm, ipr := items.Schema.ColumnIndex("id"), items.Schema.ColumnIndex("name"), items.Schema.ColumnIndex("initial_price")
				res := &sqldb.Result{Columns: []string{"id", "name", "initial_price"}}
				for _, it := range items.Rows {
					if sqldb.LikeMatch("%vintage%", it[inm].S) {
						res.Rows = append(res.Rows, sqldb.Row{it[iid], it[inm], it[ipr]})
					}
				}
				return res, nil
			}),
		mk("EndingAuctions",
			`select id, name, end_date from items where end_date <= date '2009-03-01'
			 order by end_date asc limit 25`,
			func(ctx context.Context, db *sqldb.Database) (*sqldb.Result, error) {
				items, err := db.Table("items")
				if err != nil {
					return nil, err
				}
				iid, inm, ied := items.Schema.ColumnIndex("id"), items.Schema.ColumnIndex("name"), items.Schema.ColumnIndex("end_date")
				cutoff := sqldb.MustDate("2009-03-01")
				var rows []sqldb.Row
				for _, it := range items.Rows {
					if c, err := sqldb.Compare(it[ied], cutoff); err == nil && c <= 0 {
						rows = append(rows, sqldb.Row{it[iid], it[inm], it[ied]})
					}
				}
				sort.SliceStable(rows, func(a, b int) bool { return rows[a][2].I < rows[b][2].I })
				if len(rows) > 25 {
					rows = rows[:25]
				}
				return &sqldb.Result{Columns: []string{"id", "name", "end_date"}, Rows: rows}, nil
			}),
	}
}

func twoTables(db *sqldb.Database, a, b string) (*sqldb.Table, *sqldb.Table, error) {
	ta, err := db.Table(a)
	if err != nil {
		return nil, nil, err
	}
	tb, err := db.Table(b)
	if err != nil {
		return nil, nil, err
	}
	return ta, tb, nil
}
