// Package job provides the Join Order Benchmark substrate: the
// 21-table IMDB schema, a synthetic data generator (the real 5 GB
// IMDB dump is proprietary-ish and outside an offline build; the
// substitution preserves the join topology, which is what the
// paper's Figure 10 stresses), and eleven EQC-compliant hidden
// queries with 7–12 joins apiece, mirroring the JOB query shapes
// (ungrouped MIN aggregates over deep join chains with equality and
// LIKE dimension filters).
package job

import (
	"fmt"
	"math/rand"

	"unmasque/internal/sqldb"
	"unmasque/internal/sqlparser"
	"unmasque/internal/xdata"
)

// Scale is the row-scale factor.
type Scale float64

// Named scales.
const (
	ScaleTiny Scale = 0.1
	ScaleFull Scale = 1.0 // the "IMDB 5 GB" analogue
)

// Rows reports per-table row counts.
func (s Scale) Rows() map[string]int {
	f := float64(s)
	n := func(x float64, min int) int {
		if int(x) < min {
			return min
		}
		return int(x)
	}
	return map[string]int{
		"kind_type":       7,
		"info_type":       30,
		"role_type":       12,
		"link_type":       18,
		"comp_cast_type":  4,
		"company_type":    4,
		"title":           n(3000*f, 60),
		"company_name":    n(600*f, 20),
		"keyword":         n(800*f, 20),
		"name":            n(3000*f, 60),
		"char_name":       n(2000*f, 40),
		"movie_companies": n(5000*f, 120),
		"movie_info":      n(8000*f, 150),
		"movie_info_idx":  n(3000*f, 80),
		"movie_keyword":   n(6000*f, 120),
		"cast_info":       n(10000*f, 200),
		"aka_title":       n(800*f, 20),
		"aka_name":        n(1000*f, 20),
		"person_info":     n(2500*f, 60),
		"movie_link":      n(400*f, 20),
		"complete_cast":   n(600*f, 20),
	}
}

// Schemas returns the IMDB table definitions.
func Schemas() []sqldb.TableSchema {
	pk := func(name string) sqldb.Column {
		return sqldb.Column{Name: name, Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30}
	}
	return []sqldb.TableSchema{
		{Name: "kind_type", Columns: []sqldb.Column{pk("id"), {Name: "kind", Type: sqldb.TText, MaxLen: 15}}, PrimaryKey: []string{"id"}},
		{Name: "info_type", Columns: []sqldb.Column{pk("id"), {Name: "info", Type: sqldb.TText, MaxLen: 32}}, PrimaryKey: []string{"id"}},
		{Name: "role_type", Columns: []sqldb.Column{pk("id"), {Name: "role", Type: sqldb.TText, MaxLen: 32}}, PrimaryKey: []string{"id"}},
		{Name: "link_type", Columns: []sqldb.Column{pk("id"), {Name: "link", Type: sqldb.TText, MaxLen: 32}}, PrimaryKey: []string{"id"}},
		{Name: "comp_cast_type", Columns: []sqldb.Column{pk("id"), {Name: "kind", Type: sqldb.TText, MaxLen: 32}}, PrimaryKey: []string{"id"}},
		{Name: "company_type", Columns: []sqldb.Column{pk("id"), {Name: "kind", Type: sqldb.TText, MaxLen: 32}}, PrimaryKey: []string{"id"}},
		{
			Name: "title",
			Columns: []sqldb.Column{
				pk("id"),
				{Name: "title", Type: sqldb.TText, MaxLen: 100},
				{Name: "kind_id", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
				{Name: "production_year", Type: sqldb.TInt, MinInt: 1900, MaxInt: 2020},
				{Name: "episode_nr", Type: sqldb.TInt, MinInt: 0, MaxInt: 500},
			},
			PrimaryKey:  []string{"id"},
			ForeignKeys: []sqldb.ForeignKey{{Column: "kind_id", RefTable: "kind_type", RefColumn: "id"}},
		},
		{
			Name: "company_name",
			Columns: []sqldb.Column{
				pk("id"),
				{Name: "name", Type: sqldb.TText, MaxLen: 100},
				{Name: "country_code", Type: sqldb.TText, MaxLen: 6},
			},
			PrimaryKey: []string{"id"},
		},
		{Name: "keyword", Columns: []sqldb.Column{pk("id"), {Name: "keyword", Type: sqldb.TText, MaxLen: 64}}, PrimaryKey: []string{"id"}},
		{
			Name: "name",
			Columns: []sqldb.Column{
				pk("id"),
				{Name: "name", Type: sqldb.TText, MaxLen: 100},
				{Name: "gender", Type: sqldb.TText, MaxLen: 1},
			},
			PrimaryKey: []string{"id"},
		},
		{Name: "char_name", Columns: []sqldb.Column{pk("id"), {Name: "name", Type: sqldb.TText, MaxLen: 100}}, PrimaryKey: []string{"id"}},
		{
			Name: "movie_companies",
			Columns: []sqldb.Column{
				pk("movie_id"), {Name: "company_id", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
				{Name: "company_type_id", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
				{Name: "note", Type: sqldb.TText, MaxLen: 100},
			},
			ForeignKeys: []sqldb.ForeignKey{
				{Column: "movie_id", RefTable: "title", RefColumn: "id"},
				{Column: "company_id", RefTable: "company_name", RefColumn: "id"},
				{Column: "company_type_id", RefTable: "company_type", RefColumn: "id"},
			},
		},
		{
			Name: "movie_info",
			Columns: []sqldb.Column{
				pk("movie_id"), {Name: "info_type_id", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
				{Name: "info", Type: sqldb.TText, MaxLen: 100},
			},
			ForeignKeys: []sqldb.ForeignKey{
				{Column: "movie_id", RefTable: "title", RefColumn: "id"},
				{Column: "info_type_id", RefTable: "info_type", RefColumn: "id"},
			},
		},
		{
			Name: "movie_info_idx",
			Columns: []sqldb.Column{
				pk("movie_id"), {Name: "info_type_id", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
				{Name: "info", Type: sqldb.TText, MaxLen: 32},
			},
			ForeignKeys: []sqldb.ForeignKey{
				{Column: "movie_id", RefTable: "title", RefColumn: "id"},
				{Column: "info_type_id", RefTable: "info_type", RefColumn: "id"},
			},
		},
		{
			Name: "movie_keyword",
			Columns: []sqldb.Column{
				pk("movie_id"), {Name: "keyword_id", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
			},
			ForeignKeys: []sqldb.ForeignKey{
				{Column: "movie_id", RefTable: "title", RefColumn: "id"},
				{Column: "keyword_id", RefTable: "keyword", RefColumn: "id"},
			},
		},
		{
			Name: "cast_info",
			Columns: []sqldb.Column{
				pk("movie_id"), {Name: "person_id", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
				{Name: "person_role_id", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
				{Name: "role_id", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
				{Name: "note", Type: sqldb.TText, MaxLen: 100},
			},
			ForeignKeys: []sqldb.ForeignKey{
				{Column: "movie_id", RefTable: "title", RefColumn: "id"},
				{Column: "person_id", RefTable: "name", RefColumn: "id"},
				{Column: "person_role_id", RefTable: "char_name", RefColumn: "id"},
				{Column: "role_id", RefTable: "role_type", RefColumn: "id"},
			},
		},
		{
			Name: "aka_title",
			Columns: []sqldb.Column{
				pk("movie_id"), {Name: "title", Type: sqldb.TText, MaxLen: 100},
			},
			ForeignKeys: []sqldb.ForeignKey{{Column: "movie_id", RefTable: "title", RefColumn: "id"}},
		},
		{
			Name: "aka_name",
			Columns: []sqldb.Column{
				pk("person_id"), {Name: "name", Type: sqldb.TText, MaxLen: 100},
			},
			ForeignKeys: []sqldb.ForeignKey{{Column: "person_id", RefTable: "name", RefColumn: "id"}},
		},
		{
			Name: "person_info",
			Columns: []sqldb.Column{
				pk("person_id"), {Name: "info_type_id", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
				{Name: "info", Type: sqldb.TText, MaxLen: 100},
			},
			ForeignKeys: []sqldb.ForeignKey{
				{Column: "person_id", RefTable: "name", RefColumn: "id"},
				{Column: "info_type_id", RefTable: "info_type", RefColumn: "id"},
			},
		},
		{
			Name: "movie_link",
			Columns: []sqldb.Column{
				pk("movie_id"), {Name: "linked_movie_id", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
				{Name: "link_type_id", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
			},
			ForeignKeys: []sqldb.ForeignKey{
				{Column: "movie_id", RefTable: "title", RefColumn: "id"},
				{Column: "link_type_id", RefTable: "link_type", RefColumn: "id"},
			},
		},
		{
			Name: "complete_cast",
			Columns: []sqldb.Column{
				pk("movie_id"), {Name: "subject_id", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
				{Name: "status_id", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
			},
			ForeignKeys: []sqldb.ForeignKey{
				{Column: "movie_id", RefTable: "title", RefColumn: "id"},
				{Column: "subject_id", RefTable: "comp_cast_type", RefColumn: "id"},
				{Column: "status_id", RefTable: "comp_cast_type", RefColumn: "id"},
			},
		},
	}
}

var (
	kinds     = []string{"movie", "tv series", "video game", "video movie", "tv movie", "episode", "short"}
	infoTypes = []string{"top 250 rank", "bottom 10 rank", "genres", "rating", "votes", "budget", "languages", "release dates", "countries", "runtimes", "color info", "sound mix", "certificates", "gross", "locations", "tech info", "trivia", "goofs", "quotes", "soundtrack", "crazy credits", "alternate versions", "taglines", "plot", "height", "biography", "spouse", "birth date", "death date", "mini biography"}
	roles     = []string{"actor", "actress", "producer", "writer", "cinematographer", "composer", "costume designer", "director", "editor", "guest", "miscellaneous crew", "production designer"}
	links     = []string{"follows", "followed by", "remake of", "remade as", "references", "referenced in", "spoofs", "spoofed in", "features", "featured in", "spin off from", "spin off", "version of", "similar to", "edited into", "edited from", "alternate language version of", "unknown link"}
	ccKinds   = []string{"cast", "crew", "complete", "complete+verified"}
	coKinds   = []string{"production companies", "distributors", "special effects companies", "miscellaneous companies"}
	countries = []string{"[us]", "[gb]", "[de]", "[fr]", "[jp]", "[in]"}
	genres    = []string{"Drama", "Comedy", "Action", "Thriller", "Documentary", "Horror", "Romance", "Sci-Fi"}
	words     = []string{"dark", "night", "city", "love", "war", "king", "sequel", "story", "last", "first", "blood", "dream"}
)

// NewDatabase builds a deterministic instance.
func NewDatabase(scale Scale, seed int64) *sqldb.Database {
	db := sqldb.NewDatabase()
	for _, s := range Schemas() {
		if err := db.CreateTable(s); err != nil {
			panic(err)
		}
	}
	rows := scale.Rows()
	rng := rand.New(rand.NewSource(seed))
	i, s := sqldb.NewInt, sqldb.NewText
	phrase := func(n int) sqldb.Value {
		out := ""
		for k := 0; k < n; k++ {
			if k > 0 {
				out += " "
			}
			out += words[rng.Intn(len(words))]
		}
		return s(out)
	}
	fill := func(table string, names []string) {
		for idx, v := range names {
			ins(db, table, i(int64(idx+1)), s(v))
		}
	}
	fill("kind_type", kinds)
	fill("info_type", infoTypes)
	fill("role_type", roles)
	fill("link_type", links)
	fill("comp_cast_type", ccKinds)
	fill("company_type", coKinds)

	for t := 1; t <= rows["title"]; t++ {
		ins(db, "title", i(int64(t)), phrase(3), i(int64(1+rng.Intn(len(kinds)))),
			i(int64(1900+rng.Intn(120))), i(int64(rng.Intn(50))))
	}
	for c := 1; c <= rows["company_name"]; c++ {
		ins(db, "company_name", i(int64(c)), phrase(2), s(countries[rng.Intn(len(countries))]))
	}
	for k := 1; k <= rows["keyword"]; k++ {
		ins(db, "keyword", i(int64(k)), s(fmt.Sprintf("%s-%s-%d", words[rng.Intn(len(words))], words[rng.Intn(len(words))], k%97)))
	}
	genders := []string{"m", "f", ""}
	for n := 1; n <= rows["name"]; n++ {
		ins(db, "name", i(int64(n)), phrase(2), s(genders[rng.Intn(len(genders))]))
	}
	for c := 1; c <= rows["char_name"]; c++ {
		ins(db, "char_name", i(int64(c)), phrase(2))
	}
	for m := 1; m <= rows["movie_companies"]; m++ {
		ins(db, "movie_companies", i(int64(1+rng.Intn(rows["title"]))),
			i(int64(1+rng.Intn(rows["company_name"]))), i(int64(1+rng.Intn(len(coKinds)))), phrase(2))
	}
	for m := 1; m <= rows["movie_info"]; m++ {
		itID := 1 + rng.Intn(len(infoTypes))
		info := phrase(2)
		if infoTypes[itID-1] == "genres" {
			info = s(genres[rng.Intn(len(genres))])
		}
		ins(db, "movie_info", i(int64(1+rng.Intn(rows["title"]))), i(int64(itID)), info)
	}
	for m := 1; m <= rows["movie_info_idx"]; m++ {
		ins(db, "movie_info_idx", i(int64(1+rng.Intn(rows["title"]))),
			i(int64(1+rng.Intn(len(infoTypes)))), s(fmt.Sprintf("%d.%d", rng.Intn(10), rng.Intn(10))))
	}
	for m := 1; m <= rows["movie_keyword"]; m++ {
		ins(db, "movie_keyword", i(int64(1+rng.Intn(rows["title"]))), i(int64(1+rng.Intn(rows["keyword"]))))
	}
	for m := 1; m <= rows["cast_info"]; m++ {
		ins(db, "cast_info", i(int64(1+rng.Intn(rows["title"]))), i(int64(1+rng.Intn(rows["name"]))),
			i(int64(1+rng.Intn(rows["char_name"]))), i(int64(1+rng.Intn(len(roles)))), phrase(1))
	}
	for m := 1; m <= rows["aka_title"]; m++ {
		ins(db, "aka_title", i(int64(1+rng.Intn(rows["title"]))), phrase(3))
	}
	for m := 1; m <= rows["aka_name"]; m++ {
		ins(db, "aka_name", i(int64(1+rng.Intn(rows["name"]))), phrase(2))
	}
	for m := 1; m <= rows["person_info"]; m++ {
		ins(db, "person_info", i(int64(1+rng.Intn(rows["name"]))),
			i(int64(1+rng.Intn(len(infoTypes)))), phrase(3))
	}
	for m := 1; m <= rows["movie_link"]; m++ {
		ins(db, "movie_link", i(int64(1+rng.Intn(rows["title"]))),
			i(int64(1+rng.Intn(rows["title"]))), i(int64(1+rng.Intn(len(links)))))
	}
	for m := 1; m <= rows["complete_cast"]; m++ {
		ins(db, "complete_cast", i(int64(1+rng.Intn(rows["title"]))),
			i(int64(1+rng.Intn(len(ccKinds)))), i(int64(1+rng.Intn(len(ccKinds)))))
	}
	return db
}

func ins(db *sqldb.Database, table string, vals ...sqldb.Value) {
	if err := db.Insert(table, vals...); err != nil {
		panic(fmt.Sprintf("job generator: %v", err))
	}
}

// HiddenQueries returns eleven EQC-compliant JOB-style queries. Join
// counts range from 7 to 12 equi-join predicates (the paper: "≥ 7
// joins in each query — in fact, query Q24b has as many as 12").
func HiddenQueries() map[string]string {
	return map[string]string{
		// 7 joins.
		"J1": `
			select min(title.title) as movie_title, min(title.production_year) as movie_year
			from company_type, movie_companies, title, kind_type, movie_info, info_type, company_name
			where company_type.id = movie_companies.company_type_id
			  and movie_companies.movie_id = title.id
			  and title.kind_id = kind_type.id
			  and movie_info.movie_id = title.id
			  and movie_info.info_type_id = info_type.id
			  and movie_companies.company_id = company_name.id
			  and movie_companies.movie_id = movie_info.movie_id
			  and company_type.kind = 'production companies'
			  and kind_type.kind = 'movie'
			  and title.production_year >= 1990`,
		// 7 joins, LIKE filter.
		"J2": `
			select min(title.title) as movie_title
			from keyword, movie_keyword, title, movie_companies, company_name, kind_type, movie_info
			where keyword.id = movie_keyword.keyword_id
			  and movie_keyword.movie_id = title.id
			  and movie_companies.movie_id = title.id
			  and movie_companies.company_id = company_name.id
			  and title.kind_id = kind_type.id
			  and movie_info.movie_id = title.id
			  and movie_keyword.movie_id = movie_companies.movie_id
			  and keyword.keyword like '%sequel%'
			  and company_name.country_code = '[us]'`,
		// 8 joins.
		"J3": `
			select min(name.name) as actor_name, min(title.title) as movie_title
			from cast_info, name, title, role_type, kind_type, movie_companies, company_name, char_name
			where cast_info.person_id = name.id
			  and cast_info.movie_id = title.id
			  and cast_info.role_id = role_type.id
			  and cast_info.person_role_id = char_name.id
			  and title.kind_id = kind_type.id
			  and movie_companies.movie_id = title.id
			  and movie_companies.company_id = company_name.id
			  and movie_companies.movie_id = cast_info.movie_id
			  and role_type.role = 'actor'
			  and title.production_year >= 2000`,
		// 8 joins with a between filter.
		"J4": `
			select min(title.title) as movie_title, min(movie_info_idx.info) as rating
			from movie_info_idx, info_type, title, kind_type, movie_keyword, keyword, movie_info, movie_companies
			where movie_info_idx.movie_id = title.id
			  and movie_info_idx.info_type_id = info_type.id
			  and title.kind_id = kind_type.id
			  and movie_keyword.movie_id = title.id
			  and movie_keyword.keyword_id = keyword.id
			  and movie_info.movie_id = title.id
			  and movie_companies.movie_id = title.id
			  and movie_keyword.movie_id = movie_info.movie_id
			  and info_type.info = 'rating'
			  and title.production_year between 1980 and 1995`,
		// 9 joins.
		"J5": `
			select min(name.name) as writer_name, min(title.title) as movie_title
			from cast_info, name, title, role_type, movie_info, info_type, kind_type, aka_name, person_info
			where cast_info.person_id = name.id
			  and cast_info.movie_id = title.id
			  and cast_info.role_id = role_type.id
			  and movie_info.movie_id = title.id
			  and movie_info.info_type_id = info_type.id
			  and title.kind_id = kind_type.id
			  and aka_name.person_id = name.id
			  and person_info.person_id = name.id
			  and aka_name.person_id = person_info.person_id
			  and role_type.role = 'writer'`,
		// 9 joins with grouping.
		"J6": `
			select kind_type.kind, count(*) as movies
			from kind_type, title, movie_companies, company_name, company_type, movie_keyword, keyword, movie_info, info_type
			where title.kind_id = kind_type.id
			  and movie_companies.movie_id = title.id
			  and movie_companies.company_id = company_name.id
			  and movie_companies.company_type_id = company_type.id
			  and movie_keyword.movie_id = title.id
			  and movie_keyword.keyword_id = keyword.id
			  and movie_info.movie_id = title.id
			  and movie_info.info_type_id = info_type.id
			  and movie_keyword.movie_id = movie_companies.movie_id
			  and company_name.country_code = '[us]'
			group by kind_type.kind
			order by kind_type.kind`,
		// 10 joins.
		"J7": `
			select min(title.title) as movie_title, min(company_name.name) as producer
			from title, kind_type, movie_companies, company_name, company_type, movie_info, info_type, movie_keyword, keyword, aka_title
			where title.kind_id = kind_type.id
			  and movie_companies.movie_id = title.id
			  and movie_companies.company_id = company_name.id
			  and movie_companies.company_type_id = company_type.id
			  and movie_info.movie_id = title.id
			  and movie_info.info_type_id = info_type.id
			  and movie_keyword.movie_id = title.id
			  and movie_keyword.keyword_id = keyword.id
			  and aka_title.movie_id = title.id
			  and aka_title.movie_id = movie_keyword.movie_id
			  and company_type.kind = 'production companies'
			  and title.production_year >= 1985`,
		// 10 joins, person-centric.
		"J8": `
			select min(name.name) as person, min(char_name.name) as character
			from name, cast_info, char_name, role_type, title, kind_type, movie_info, info_type, aka_name, person_info
			where cast_info.person_id = name.id
			  and cast_info.person_role_id = char_name.id
			  and cast_info.role_id = role_type.id
			  and cast_info.movie_id = title.id
			  and title.kind_id = kind_type.id
			  and movie_info.movie_id = title.id
			  and movie_info.info_type_id = info_type.id
			  and aka_name.person_id = name.id
			  and person_info.person_id = name.id
			  and person_info.person_id = aka_name.person_id
			  and name.gender = 'f'
			  and kind_type.kind = 'movie'`,
		// 11 joins.
		"J9": `
			select min(title.title) as movie_title
			from title, kind_type, movie_companies, company_name, company_type, movie_info, info_type, movie_keyword, keyword, cast_info, name
			where title.kind_id = kind_type.id
			  and movie_companies.movie_id = title.id
			  and movie_companies.company_id = company_name.id
			  and movie_companies.company_type_id = company_type.id
			  and movie_info.movie_id = title.id
			  and movie_info.info_type_id = info_type.id
			  and movie_keyword.movie_id = title.id
			  and movie_keyword.keyword_id = keyword.id
			  and cast_info.movie_id = title.id
			  and cast_info.person_id = name.id
			  and cast_info.movie_id = movie_keyword.movie_id
			  and kind_type.kind = 'movie'
			  and company_name.country_code = '[us]'`,
		// 11 joins with complete_cast.
		"J10": `
			select min(title.title) as movie_title, min(name.name) as actor
			from complete_cast, comp_cast_type, title, kind_type, cast_info, name, role_type, movie_companies, company_name, movie_info, info_type
			where complete_cast.movie_id = title.id
			  and complete_cast.subject_id = comp_cast_type.id
			  and title.kind_id = kind_type.id
			  and cast_info.movie_id = title.id
			  and cast_info.person_id = name.id
			  and cast_info.role_id = role_type.id
			  and movie_companies.movie_id = title.id
			  and movie_companies.company_id = company_name.id
			  and movie_info.movie_id = title.id
			  and movie_info.info_type_id = info_type.id
			  and cast_info.movie_id = complete_cast.movie_id
			  and comp_cast_type.kind = 'cast'`,
		// 12 joins — the Q24b analogue.
		"J11": `
			select min(title.title) as movie_title, min(keyword.keyword) as key_word
			from title, kind_type, movie_companies, company_name, company_type, movie_info, info_type, movie_keyword, keyword, cast_info, name, role_type
			where title.kind_id = kind_type.id
			  and movie_companies.movie_id = title.id
			  and movie_companies.company_id = company_name.id
			  and movie_companies.company_type_id = company_type.id
			  and movie_info.movie_id = title.id
			  and movie_info.info_type_id = info_type.id
			  and movie_keyword.movie_id = title.id
			  and movie_keyword.keyword_id = keyword.id
			  and cast_info.movie_id = title.id
			  and cast_info.person_id = name.id
			  and cast_info.role_id = role_type.id
			  and cast_info.movie_id = movie_companies.movie_id
			  and role_type.role = 'actor'
			  and title.production_year >= 1995`,
	}
}

// QueryOrder lists the queries in presentation order.
func QueryOrder() []string {
	return []string{"J1", "J2", "J3", "J4", "J5", "J6", "J7", "J8", "J9", "J10", "J11"}
}

// PlantWitnesses guarantees populated results for the given queries.
func PlantWitnesses(db *sqldb.Database, queries map[string]string) error {
	schemas := Schemas()
	const keyBase = 70_000_000
	offset := int64(0)
	for name, sql := range queries {
		stmt, err := sqlparser.Parse(sql)
		if err != nil {
			return fmt.Errorf("query %s: %w", name, err)
		}
		analysis, err := xdata.Analyze(stmt, schemas)
		if err != nil {
			return fmt.Errorf("query %s: %w", name, err)
		}
		for w := 0; w < 3; w++ {
			if err := analysis.PlantWitness(db, keyBase+offset, w, nil); err != nil {
				return fmt.Errorf("query %s witness %d: %w", name, w, err)
			}
			offset++
		}
	}
	return nil
}
