package job

import (
	"context"
	"strings"
	"testing"

	"unmasque/internal/sqldb"
	"unmasque/internal/sqlparser"
)

func TestSchemasConsistent(t *testing.T) {
	db := sqldb.NewDatabase()
	for _, s := range Schemas() {
		if err := db.CreateTable(s); err != nil {
			t.Fatalf("create %s: %v", s.Name, err)
		}
	}
	if len(Schemas()) != 21 {
		t.Errorf("expected the 21-table IMDB schema, got %d", len(Schemas()))
	}
	for _, s := range Schemas() {
		for _, fk := range s.ForeignKeys {
			ref, err := db.Table(fk.RefTable)
			if err != nil {
				t.Errorf("%s: FK to missing table %s", s.Name, fk.RefTable)
				continue
			}
			if ref.Schema.ColumnIndex(fk.RefColumn) < 0 {
				t.Errorf("%s: FK to missing column %s.%s", s.Name, fk.RefTable, fk.RefColumn)
			}
		}
	}
}

func TestQueriesRunPopulatedAndJoinCounts(t *testing.T) {
	db := NewDatabase(ScaleTiny, 3)
	if err := PlantWitnesses(db, HiddenQueries()); err != nil {
		t.Fatal(err)
	}
	for name, sql := range HiddenQueries() {
		stmt, err := sqlparser.Parse(sql)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		// Count equi-join predicates: the paper's suite has >= 7 per
		// query, up to 12.
		joins := 0
		for _, c := range sqldb.Conjuncts(stmt.Where) {
			if b, ok := c.(*sqldb.BinaryExpr); ok && b.Op == sqldb.OpEq {
				if _, lok := b.L.(*sqldb.ColumnExpr); lok {
					if _, rok := b.R.(*sqldb.ColumnExpr); rok {
						joins++
					}
				}
			}
		}
		if joins < 7 {
			t.Errorf("%s has only %d joins; the JOB suite requires >= 7", name, joins)
		}
		res, err := db.Execute(context.Background(), stmt)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if !res.Populated() {
			t.Errorf("%s unpopulated", name)
		}
	}
	// The deepest query carries 12 joins (the Q24b analogue).
	deepest := 0
	for _, sql := range HiddenQueries() {
		deepest = max(deepest, strings.Count(sql, "="))
	}
	if deepest < 12 {
		t.Errorf("no query reaches 12 join/filter predicates (max %d)", deepest)
	}
}

func TestGeneratorScales(t *testing.T) {
	small := NewDatabase(ScaleTiny, 5).TotalRows()
	big := NewDatabase(ScaleFull, 5).TotalRows()
	if big <= small {
		t.Errorf("scaling broken: %d vs %d", small, big)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
