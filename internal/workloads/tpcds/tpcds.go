// Package tpcds provides a store-sales-centric TPC-DS subset: seven
// dimension/fact tables with PK/FK linkages, a deterministic
// generator, and seven EQC-compliant hidden queries derived from the
// benchmark (the paper evaluates seven TPC-DS queries, with details
// in its technical report — experiment E9 of DESIGN.md).
package tpcds

import (
	"fmt"
	"math/rand"

	"unmasque/internal/sqldb"
	"unmasque/internal/sqlparser"
	"unmasque/internal/xdata"
)

// Scale is the row-scale factor (1.0 ≈ the unit experiment size).
type Scale float64

// Named scales.
const (
	ScaleTiny Scale = 0.1
	ScaleUnit Scale = 1.0
)

// Rows reports per-table row counts.
func (s Scale) Rows() map[string]int {
	f := float64(s)
	atLeast := func(n float64, min int) int {
		if int(n) < min {
			return min
		}
		return int(n)
	}
	return map[string]int{
		"date_dim":               731, // two years of days, scale-independent
		"item":                   atLeast(1000*f, 40),
		"customer":               atLeast(2000*f, 40),
		"customer_address":       atLeast(1000*f, 30),
		"store":                  atLeast(20*f, 6),
		"household_demographics": 120,
		"store_sales":            atLeast(40000*f, 1500),
	}
}

// Schemas returns the table definitions.
func Schemas() []sqldb.TableSchema {
	return []sqldb.TableSchema{
		{
			Name: "date_dim",
			Columns: []sqldb.Column{
				{Name: "d_date_sk", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
				{Name: "d_date", Type: sqldb.TDate},
				{Name: "d_year", Type: sqldb.TInt, MinInt: 1990, MaxInt: 2010},
				{Name: "d_moy", Type: sqldb.TInt, MinInt: 1, MaxInt: 12},
				{Name: "d_dom", Type: sqldb.TInt, MinInt: 1, MaxInt: 31},
				{Name: "d_day_name", Type: sqldb.TText, MaxLen: 9},
			},
			PrimaryKey: []string{"d_date_sk"},
		},
		{
			Name: "item",
			Columns: []sqldb.Column{
				{Name: "i_item_sk", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
				{Name: "i_item_id", Type: sqldb.TText, MaxLen: 16},
				{Name: "i_brand_id", Type: sqldb.TInt, MinInt: 1, MaxInt: 1000},
				{Name: "i_brand", Type: sqldb.TText, MaxLen: 50},
				{Name: "i_manufact_id", Type: sqldb.TInt, MinInt: 1, MaxInt: 1000},
				{Name: "i_manager_id", Type: sqldb.TInt, MinInt: 1, MaxInt: 100},
				{Name: "i_category_id", Type: sqldb.TInt, MinInt: 1, MaxInt: 10},
				{Name: "i_category", Type: sqldb.TText, MaxLen: 50},
				{Name: "i_current_price", Type: sqldb.TFloat, Precision: 2, MinInt: 1, MaxInt: 300},
			},
			PrimaryKey: []string{"i_item_sk"},
		},
		{
			Name: "customer_address",
			Columns: []sqldb.Column{
				{Name: "ca_address_sk", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
				{Name: "ca_city", Type: sqldb.TText, MaxLen: 60},
				{Name: "ca_state", Type: sqldb.TText, MaxLen: 2},
				{Name: "ca_zip", Type: sqldb.TText, MaxLen: 10},
				{Name: "ca_gmt_offset", Type: sqldb.TInt, MinInt: -12, MaxInt: 12},
			},
			PrimaryKey: []string{"ca_address_sk"},
		},
		{
			Name: "customer",
			Columns: []sqldb.Column{
				{Name: "c_customer_sk", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
				{Name: "c_customer_id", Type: sqldb.TText, MaxLen: 16},
				{Name: "c_first_name", Type: sqldb.TText, MaxLen: 20},
				{Name: "c_last_name", Type: sqldb.TText, MaxLen: 30},
				{Name: "c_birth_year", Type: sqldb.TInt, MinInt: 1930, MaxInt: 2000},
				{Name: "c_current_addr_sk", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
			},
			PrimaryKey:  []string{"c_customer_sk"},
			ForeignKeys: []sqldb.ForeignKey{{Column: "c_current_addr_sk", RefTable: "customer_address", RefColumn: "ca_address_sk"}},
		},
		{
			Name: "store",
			Columns: []sqldb.Column{
				{Name: "s_store_sk", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
				{Name: "s_store_id", Type: sqldb.TText, MaxLen: 16},
				{Name: "s_store_name", Type: sqldb.TText, MaxLen: 50},
				{Name: "s_number_employees", Type: sqldb.TInt, MinInt: 50, MaxInt: 1000},
				{Name: "s_floor_space", Type: sqldb.TInt, MinInt: 1000, MaxInt: 100000},
				{Name: "s_city", Type: sqldb.TText, MaxLen: 60},
				{Name: "s_state", Type: sqldb.TText, MaxLen: 2},
			},
			PrimaryKey: []string{"s_store_sk"},
		},
		{
			Name: "household_demographics",
			Columns: []sqldb.Column{
				{Name: "hd_demo_sk", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
				{Name: "hd_dep_count", Type: sqldb.TInt, MinInt: 0, MaxInt: 9},
				{Name: "hd_vehicle_count", Type: sqldb.TInt, MinInt: 0, MaxInt: 4},
			},
			PrimaryKey: []string{"hd_demo_sk"},
		},
		{
			Name: "store_sales",
			Columns: []sqldb.Column{
				{Name: "ss_sold_date_sk", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
				{Name: "ss_item_sk", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
				{Name: "ss_customer_sk", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
				{Name: "ss_store_sk", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
				{Name: "ss_hdemo_sk", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
				{Name: "ss_ticket_number", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 40},
				{Name: "ss_quantity", Type: sqldb.TInt, MinInt: 1, MaxInt: 100},
				{Name: "ss_list_price", Type: sqldb.TFloat, Precision: 2, MinInt: 1, MaxInt: 300},
				{Name: "ss_sales_price", Type: sqldb.TFloat, Precision: 2, MinInt: 0, MaxInt: 300},
				{Name: "ss_ext_sales_price", Type: sqldb.TFloat, Precision: 2, MinInt: 0, MaxInt: 30000},
				{Name: "ss_ext_discount_amt", Type: sqldb.TFloat, Precision: 2, MinInt: 0, MaxInt: 30000},
				{Name: "ss_net_profit", Type: sqldb.TFloat, Precision: 2, MinInt: -10000, MaxInt: 20000},
			},
			ForeignKeys: []sqldb.ForeignKey{
				{Column: "ss_sold_date_sk", RefTable: "date_dim", RefColumn: "d_date_sk"},
				{Column: "ss_item_sk", RefTable: "item", RefColumn: "i_item_sk"},
				{Column: "ss_customer_sk", RefTable: "customer", RefColumn: "c_customer_sk"},
				{Column: "ss_store_sk", RefTable: "store", RefColumn: "s_store_sk"},
				{Column: "ss_hdemo_sk", RefTable: "household_demographics", RefColumn: "hd_demo_sk"},
			},
		},
	}
}

var (
	categories = []string{"Books", "Electronics", "Home", "Jewelry", "Men", "Music", "Shoes", "Sports", "Women", "Children"}
	dayNames   = []string{"Sunday", "Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday"}
	states     = []string{"CA", "TX", "NY", "WA", "IL", "GA"}
	storeNames = []string{"ese", "ation", "able", "ought", "bar", "cally"}
)

// NewDatabase builds a deterministic instance.
func NewDatabase(scale Scale, seed int64) *sqldb.Database {
	db := sqldb.NewDatabase()
	for _, s := range Schemas() {
		if err := db.CreateTable(s); err != nil {
			panic(err)
		}
	}
	rows := scale.Rows()
	rng := rand.New(rand.NewSource(seed))
	i, f, s := sqldb.NewInt, sqldb.NewFloat, sqldb.NewText

	base := sqldb.MustDate("1998-01-01").I
	for d := 0; d < rows["date_dim"]; d++ {
		dv := sqldb.NewDate(base + int64(d))
		year := 1998 + d/365
		moy := 1 + (d%365)/31
		if moy > 12 {
			moy = 12
		}
		ins(db, "date_dim", i(int64(d+1)), dv, i(int64(year)), i(int64(moy)), i(int64(1+d%28)), s(dayNames[d%7]))
	}
	for it := 1; it <= rows["item"]; it++ {
		catID := 1 + rng.Intn(10)
		brandID := 1 + rng.Intn(1000)
		ins(db, "item",
			i(int64(it)), s(fmt.Sprintf("ITEM%012d", it)), i(int64(brandID)),
			s(fmt.Sprintf("brand%d", brandID)), i(int64(1+rng.Intn(1000))), i(int64(1+rng.Intn(100))),
			i(int64(catID)), s(categories[catID-1]), f(1+float64(rng.Intn(29900))/100))
	}
	for a := 1; a <= rows["customer_address"]; a++ {
		ins(db, "customer_address",
			i(int64(a)), s(fmt.Sprintf("city%d", rng.Intn(80))), s(states[rng.Intn(len(states))]),
			s(fmt.Sprintf("%05d", rng.Intn(99999))), i(int64(rng.Intn(25)-12)))
	}
	for c := 1; c <= rows["customer"]; c++ {
		ins(db, "customer",
			i(int64(c)), s(fmt.Sprintf("CUST%012d", c)), s(fmt.Sprintf("first%d", rng.Intn(500))),
			s(fmt.Sprintf("last%d", rng.Intn(500))), i(int64(1930+rng.Intn(71))),
			i(int64(1+rng.Intn(rows["customer_address"]))))
	}
	for st := 1; st <= rows["store"]; st++ {
		ins(db, "store",
			i(int64(st)), s(fmt.Sprintf("STORE%09d", st)), s(storeNames[st%len(storeNames)]),
			i(int64(50+rng.Intn(950))), i(int64(1000+rng.Intn(99000))),
			s(fmt.Sprintf("city%d", rng.Intn(40))), s(states[rng.Intn(len(states))]))
	}
	for h := 1; h <= rows["household_demographics"]; h++ {
		ins(db, "household_demographics", i(int64(h)), i(int64(h%10)), i(int64(h%5)))
	}
	for ss := 1; ss <= rows["store_sales"]; ss++ {
		qty := 1 + rng.Intn(100)
		list := 1 + float64(rng.Intn(29900))/100
		sale := list * (0.5 + rng.Float64()/2)
		ins(db, "store_sales",
			i(int64(1+rng.Intn(rows["date_dim"]))), i(int64(1+rng.Intn(rows["item"]))),
			i(int64(1+rng.Intn(rows["customer"]))), i(int64(1+rng.Intn(rows["store"]))),
			i(int64(1+rng.Intn(rows["household_demographics"]))), i(int64(ss)),
			i(int64(qty)), f(list), f(sale), f(sale*float64(qty)),
			f(float64(rng.Intn(3000))/100), f(sale*float64(qty)*0.2-100))
	}
	return db
}

func ins(db *sqldb.Database, table string, vals ...sqldb.Value) {
	if err := db.Insert(table, vals...); err != nil {
		panic(fmt.Sprintf("tpcds generator: %v", err))
	}
}

// HiddenQueries returns the seven EQC-compliant TPC-DS derivatives
// (labels reference the originating benchmark queries).
func HiddenQueries() map[string]string {
	return map[string]string{
		"DS3": `
			select d_year, i_brand_id, i_brand, sum(ss_ext_sales_price) as sum_agg
			from date_dim, store_sales, item
			where d_date_sk = ss_sold_date_sk
			  and ss_item_sk = i_item_sk
			  and i_manufact_id = 128
			  and d_moy = 11
			group by d_year, i_brand_id, i_brand
			order by d_year, sum_agg desc, i_brand_id`,
		"DS7": `
			select i_item_id, avg(ss_quantity) as agg1, avg(ss_list_price) as agg2,
			       avg(ss_ext_sales_price) as agg3
			from store_sales, item, household_demographics
			where ss_item_sk = i_item_sk
			  and ss_hdemo_sk = hd_demo_sk
			  and hd_dep_count = 3
			group by i_item_id
			order by i_item_id
			limit 100`,
		"DS19": `
			select i_brand_id, i_brand, sum(ss_ext_sales_price) as ext_price
			from date_dim, store_sales, item
			where d_date_sk = ss_sold_date_sk
			  and ss_item_sk = i_item_sk
			  and i_manager_id = 8
			  and d_moy = 11
			  and d_year = 1998
			group by i_brand_id, i_brand
			order by ext_price desc, i_brand_id
			limit 10`,
		"DS42": `
			select i_category_id, i_category, sum(ss_ext_sales_price) as total
			from date_dim, store_sales, item
			where d_date_sk = ss_sold_date_sk
			  and ss_item_sk = i_item_sk
			  and d_moy = 11
			  and d_year = 1998
			group by i_category_id, i_category
			order by total desc
			limit 100`,
		"DS52": `
			select i_brand_id, i_brand, sum(ss_ext_sales_price) as ext_price
			from date_dim, store_sales, item
			where d_date_sk = ss_sold_date_sk
			  and ss_item_sk = i_item_sk
			  and d_moy = 12
			  and d_year = 1998
			group by i_brand_id, i_brand
			order by ext_price desc, i_brand_id
			limit 100`,
		"DS55": `
			select i_brand_id, i_brand, sum(ss_ext_sales_price) as ext_price
			from date_dim, store_sales, item
			where d_date_sk = ss_sold_date_sk
			  and ss_item_sk = i_item_sk
			  and i_manager_id = 28
			  and d_moy = 11
			  and d_year = 1999
			group by i_brand_id, i_brand
			order by ext_price desc, i_brand_id
			limit 100`,
		"DS96": `
			select count(*) as cnt
			from store_sales, household_demographics, store
			where ss_hdemo_sk = hd_demo_sk
			  and ss_store_sk = s_store_sk
			  and hd_dep_count = 4
			  and s_store_name = 'ese'`,
	}
}

// QueryOrder lists the queries in presentation order.
func QueryOrder() []string {
	return []string{"DS3", "DS7", "DS19", "DS42", "DS52", "DS55", "DS96"}
}

// PlantWitnesses guarantees populated results for the given queries.
func PlantWitnesses(db *sqldb.Database, queries map[string]string) error {
	schemas := Schemas()
	const keyBase = 60_000_000
	offset := int64(0)
	for name, sql := range queries {
		stmt, err := sqlparser.Parse(sql)
		if err != nil {
			return fmt.Errorf("query %s: %w", name, err)
		}
		analysis, err := xdata.Analyze(stmt, schemas)
		if err != nil {
			return fmt.Errorf("query %s: %w", name, err)
		}
		for w := 0; w < 3; w++ {
			if err := analysis.PlantWitness(db, keyBase+offset, w, nil); err != nil {
				return fmt.Errorf("query %s witness %d: %w", name, w, err)
			}
			offset++
		}
	}
	return nil
}
