package tpcds

import (
	"context"
	"testing"

	"unmasque/internal/sqldb"
	"unmasque/internal/sqlparser"
)

func TestSchemasConsistent(t *testing.T) {
	db := sqldb.NewDatabase()
	for _, s := range Schemas() {
		if err := db.CreateTable(s); err != nil {
			t.Fatalf("create %s: %v", s.Name, err)
		}
	}
	for _, s := range Schemas() {
		for _, fk := range s.ForeignKeys {
			ref, err := db.Table(fk.RefTable)
			if err != nil {
				t.Errorf("%s: FK to missing table %s", s.Name, fk.RefTable)
				continue
			}
			if ref.Schema.ColumnIndex(fk.RefColumn) < 0 {
				t.Errorf("%s: FK to missing column %s.%s", s.Name, fk.RefTable, fk.RefColumn)
			}
		}
	}
}

func TestQueriesRunPopulated(t *testing.T) {
	db := NewDatabase(ScaleTiny, 3)
	if err := PlantWitnesses(db, HiddenQueries()); err != nil {
		t.Fatal(err)
	}
	for name, sql := range HiddenQueries() {
		stmt, err := sqlparser.Parse(sql)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		res, err := db.Execute(context.Background(), stmt)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if !res.Populated() {
			t.Errorf("%s unpopulated", name)
		}
	}
	if len(QueryOrder()) != len(HiddenQueries()) {
		t.Error("QueryOrder out of sync")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := NewDatabase(ScaleTiny, 9).TotalRows()
	b := NewDatabase(ScaleTiny, 9).TotalRows()
	if a != b {
		t.Errorf("nondeterministic generation: %d vs %d", a, b)
	}
}
