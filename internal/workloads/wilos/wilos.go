// Package wilos reproduces the paper's Wilos experiment (Section 6.3,
// Table 3): the Hibernate-based process-orchestration application
// whose data-access functions are re-written as imperative Go code
// over the Wilos schema. The paper evaluates 22 in-scope functions
// out of the 33 QBS snippets; this package provides the nine Table 3
// functions (named after their file and line as in the paper) plus
// thirteen further in-scope functions.
package wilos

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"unmasque/internal/app"
	"unmasque/internal/sqldb"
)

// Schemas returns the process-model tables.
func Schemas() []sqldb.TableSchema {
	id := func(name string) sqldb.Column {
		return sqldb.Column{Name: name, Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30}
	}
	text := func(name string, n int) sqldb.Column {
		return sqldb.Column{Name: name, Type: sqldb.TText, MaxLen: n}
	}
	return []sqldb.TableSchema{
		{
			Name:       "projects",
			Columns:    []sqldb.Column{id("id"), text("name", 60), {Name: "launched", Type: sqldb.TBool}},
			PrimaryKey: []string{"id"},
		},
		{
			Name: "phases",
			Columns: []sqldb.Column{
				id("id"), id("project_id"), text("name", 60), text("state", 20),
			},
			PrimaryKey:  []string{"id"},
			ForeignKeys: []sqldb.ForeignKey{{Column: "project_id", RefTable: "projects", RefColumn: "id"}},
		},
		{
			Name: "iterations",
			Columns: []sqldb.Column{
				id("id"), id("phase_id"), text("name", 60),
			},
			PrimaryKey:  []string{"id"},
			ForeignKeys: []sqldb.ForeignKey{{Column: "phase_id", RefTable: "phases", RefColumn: "id"}},
		},
		{
			Name: "activities",
			Columns: []sqldb.Column{
				id("id"), id("iteration_id"), text("name", 60), text("state", 20),
				{Name: "workload", Type: sqldb.TInt, MinInt: 0, MaxInt: 200},
			},
			PrimaryKey:  []string{"id"},
			ForeignKeys: []sqldb.ForeignKey{{Column: "iteration_id", RefTable: "iterations", RefColumn: "id"}},
		},
		{
			Name: "concrete_activities",
			Columns: []sqldb.Column{
				id("id"), id("activity_id"), text("name", 60),
				{Name: "progress", Type: sqldb.TInt, MinInt: 0, MaxInt: 100},
			},
			PrimaryKey:  []string{"id"},
			ForeignKeys: []sqldb.ForeignKey{{Column: "activity_id", RefTable: "activities", RefColumn: "id"}},
		},
		{
			Name: "participants",
			Columns: []sqldb.Column{
				id("id"), id("project_id"), text("name", 60), text("email", 60),
				{Name: "active", Type: sqldb.TBool},
			},
			PrimaryKey:  []string{"id"},
			ForeignKeys: []sqldb.ForeignKey{{Column: "project_id", RefTable: "projects", RefColumn: "id"}},
		},
		{
			Name:       "roles",
			Columns:    []sqldb.Column{id("id"), text("name", 60), text("kind", 20)},
			PrimaryKey: []string{"id"},
		},
		{
			Name: "role_descriptors",
			Columns: []sqldb.Column{
				id("id"), id("role_id"), id("project_id"), text("name", 60),
			},
			PrimaryKey: []string{"id"},
			ForeignKeys: []sqldb.ForeignKey{
				{Column: "role_id", RefTable: "roles", RefColumn: "id"},
				{Column: "project_id", RefTable: "projects", RefColumn: "id"},
			},
		},
		{
			Name: "concrete_role_descriptors",
			Columns: []sqldb.Column{
				id("id"), id("role_descriptor_id"), id("participant_id"), text("name", 60),
			},
			PrimaryKey: []string{"id"},
			ForeignKeys: []sqldb.ForeignKey{
				{Column: "role_descriptor_id", RefTable: "role_descriptors", RefColumn: "id"},
				{Column: "participant_id", RefTable: "participants", RefColumn: "id"},
			},
		},
		{
			Name: "guidances",
			Columns: []sqldb.Column{
				id("id"), id("activity_id"), text("name", 60), text("gtype", 20),
			},
			PrimaryKey:  []string{"id"},
			ForeignKeys: []sqldb.ForeignKey{{Column: "activity_id", RefTable: "activities", RefColumn: "id"}},
		},
	}
}

var (
	states = []string{"created", "started", "finished", "suspended"}
	gtypes = []string{"checklist", "concept", "example", "guideline"}
	kinds  = []string{"performer", "reviewer", "manager"}
)

// NewDatabase builds the synthetic 10 MB-analogue instance.
func NewDatabase(seed int64) *sqldb.Database {
	db := sqldb.NewDatabase()
	for _, s := range Schemas() {
		if err := db.CreateTable(s); err != nil {
			panic(err)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	i, s, b := sqldb.NewInt, sqldb.NewText, sqldb.NewBool
	const (
		nProjects   = 12
		nPhases     = 40
		nIterations = 90
		nActivities = 260
		nConcrete   = 300
		nPeople     = 80
		nRoles      = 10
		nRoleDesc   = 60
		nConcreteRD = 120
		nGuidance   = 200
	)
	for p := 1; p <= nProjects; p++ {
		ins(db, "projects", i(int64(p)), s(fmt.Sprintf("project %d", p)), b(p%3 != 0))
	}
	for p := 1; p <= nPhases; p++ {
		ins(db, "phases", i(int64(p)), i(int64(1+rng.Intn(nProjects))),
			s(fmt.Sprintf("phase %d", p)), s(states[rng.Intn(len(states))]))
	}
	for it := 1; it <= nIterations; it++ {
		ins(db, "iterations", i(int64(it)), i(int64(1+rng.Intn(nPhases))), s(fmt.Sprintf("iteration %d", it)))
	}
	for a := 1; a <= nActivities; a++ {
		ins(db, "activities", i(int64(a)), i(int64(1+rng.Intn(nIterations))),
			s(fmt.Sprintf("activity %d", a)), s(states[rng.Intn(len(states))]), i(int64(rng.Intn(200))))
	}
	for c := 1; c <= nConcrete; c++ {
		ins(db, "concrete_activities", i(int64(c)), i(int64(1+rng.Intn(nActivities))),
			s(fmt.Sprintf("concrete %d", c)), i(int64(rng.Intn(101))))
	}
	for p := 1; p <= nPeople; p++ {
		ins(db, "participants", i(int64(p)), i(int64(1+rng.Intn(nProjects))),
			s(fmt.Sprintf("person %d", p)), s(fmt.Sprintf("p%d@wilos.org", p)), b(p%5 != 0))
	}
	for r := 1; r <= nRoles; r++ {
		ins(db, "roles", i(int64(r)), s(fmt.Sprintf("role %d", r)), s(kinds[rng.Intn(len(kinds))]))
	}
	for rd := 1; rd <= nRoleDesc; rd++ {
		ins(db, "role_descriptors", i(int64(rd)), i(int64(1+rng.Intn(nRoles))),
			i(int64(1+rng.Intn(nProjects))), s(fmt.Sprintf("descriptor %d", rd)))
	}
	for c := 1; c <= nConcreteRD; c++ {
		ins(db, "concrete_role_descriptors", i(int64(c)), i(int64(1+rng.Intn(nRoleDesc))),
			i(int64(1+rng.Intn(nPeople))), s(fmt.Sprintf("crd %d", c)))
	}
	for g := 1; g <= nGuidance; g++ {
		ins(db, "guidances", i(int64(g)), i(int64(1+rng.Intn(nActivities))),
			s(fmt.Sprintf("guidance %d", g)), s(gtypes[rng.Intn(len(gtypes))]))
	}
	return db
}

func ins(db *sqldb.Database, table string, vals ...sqldb.Value) {
	if err := db.Insert(table, vals...); err != nil {
		panic(fmt.Sprintf("wilos generator: %v", err))
	}
}

// Function couples one imperative routine with its paper-style label.
type Function struct {
	Name   string
	Table3 bool // appears among the nine detailed Table 3 rows
	Exe    *app.ImperativeExecutable
}

// helper: hash-join two tables on integer columns, returning joined
// index pairs — written the way a Hibernate-session loop would walk
// associations.
func joinPairs(left *sqldb.Table, lcol string, right *sqldb.Table, rcol string) [][2]int {
	li := left.Schema.ColumnIndex(lcol)
	ri := right.Schema.ColumnIndex(rcol)
	byKey := map[int64][]int{}
	for idx, r := range right.Rows {
		if !r[ri].Null {
			byKey[r[ri].I] = append(byKey[r[ri].I], idx)
		}
	}
	var out [][2]int
	for lidx, l := range left.Rows {
		if l[li].Null {
			continue
		}
		for _, ridx := range byKey[l[li].I] {
			out = append(out, [2]int{lidx, ridx})
		}
	}
	return out
}

// groupCount is the ubiquitous "count children per parent name"
// shape.
func groupCount(parent *sqldb.Table, nameCol string, pairs [][2]int, parentSide int) *sqldb.Result {
	ni := parent.Schema.ColumnIndex(nameCol)
	counts := map[string]int64{}
	for _, pr := range pairs {
		name := parent.Rows[pr[parentSide]][ni].S
		counts[name]++
	}
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	res := &sqldb.Result{Columns: []string{"name", "cnt"}}
	for _, n := range names {
		res.Rows = append(res.Rows, sqldb.Row{sqldb.NewText(n), sqldb.NewInt(counts[n])})
	}
	return res
}

// Functions returns the 22 in-scope Wilos functions. The nine Table 3
// rows keep the paper's file/line labels.
func Functions() []Function {
	mk := func(name string, table3 bool, truth string, fn app.ImperativeFunc) Function {
		return Function{Name: name, Table3: table3, Exe: app.NewImperativeExecutable("wilos/"+name, fn, truth)}
	}
	two := func(db *sqldb.Database, a, b string) (*sqldb.Table, *sqldb.Table, error) {
		ta, err := db.Table(a)
		if err != nil {
			return nil, nil, err
		}
		tb, err := db.Table(b)
		if err != nil {
			return nil, nil, err
		}
		return ta, tb, nil
	}
	return []Function{
		// ---- the nine Table 3 functions ----
		mk("ActivityService(347)", true,
			`select iterations.name, count(*) as cnt from iterations, activities
			 where activities.iteration_id = iterations.id
			 group by iterations.name order by iterations.name`,
			func(ctx context.Context, db *sqldb.Database) (*sqldb.Result, error) {
				its, acts, err := two(db, "iterations", "activities")
				if err != nil {
					return nil, err
				}
				return groupCount(its, "name", joinPairs(its, "id", acts, "iteration_id"), 0), nil
			}),
		mk("GuidanceService(168)", true,
			`select activities.name, count(*) as cnt from activities, guidances
			 where guidances.activity_id = activities.id group by activities.name
			 order by activities.name`,
			func(ctx context.Context, db *sqldb.Database) (*sqldb.Result, error) {
				acts, gs, err := two(db, "activities", "guidances")
				if err != nil {
					return nil, err
				}
				res := groupCount(acts, "name", joinPairs(acts, "id", gs, "activity_id"), 0)
				return res, nil
			}),
		mk("ProjectService(297)", true,
			`select projects.name, count(*) as cnt from projects, phases
			 where phases.project_id = projects.id and phases.state = 'started'
			 group by projects.name order by projects.name`,
			func(ctx context.Context, db *sqldb.Database) (*sqldb.Result, error) {
				prj, ph, err := two(db, "projects", "phases")
				if err != nil {
					return nil, err
				}
				st := ph.Schema.ColumnIndex("state")
				var filtered [][2]int
				for _, pr := range joinPairs(prj, "id", ph, "project_id") {
					if ph.Rows[pr[1]][st].S == "started" {
						filtered = append(filtered, pr)
					}
				}
				return groupCount(prj, "name", filtered, 0), nil
			}),
		mk("ConcreteActivityService(133)", true,
			`select activities.name, count(*) as cnt from activities, concrete_activities
			 where concrete_activities.activity_id = activities.id group by activities.name
			 order by activities.name`,
			func(ctx context.Context, db *sqldb.Database) (*sqldb.Result, error) {
				acts, cas, err := two(db, "activities", "concrete_activities")
				if err != nil {
					return nil, err
				}
				return groupCount(acts, "name", joinPairs(acts, "id", cas, "activity_id"), 0), nil
			}),
		mk("ConcreteRoleDescriptorService(181)", true,
			`select role_descriptors.name, count(*) as cnt
			 from role_descriptors, concrete_role_descriptors
			 where concrete_role_descriptors.role_descriptor_id = role_descriptors.id
			 group by role_descriptors.name order by role_descriptors.name`,
			func(ctx context.Context, db *sqldb.Database) (*sqldb.Result, error) {
				rds, crds, err := two(db, "role_descriptors", "concrete_role_descriptors")
				if err != nil {
					return nil, err
				}
				return groupCount(rds, "name", joinPairs(rds, "id", crds, "role_descriptor_id"), 0), nil
			}),
		mk("IterationService(103)", true,
			`select phases.name, count(*) as cnt from phases, iterations
			 where iterations.phase_id = phases.id group by phases.name order by phases.name`,
			func(ctx context.Context, db *sqldb.Database) (*sqldb.Result, error) {
				ph, its, err := two(db, "phases", "iterations")
				if err != nil {
					return nil, err
				}
				return groupCount(ph, "name", joinPairs(ph, "id", its, "phase_id"), 0), nil
			}),
		mk("ParticipantService(266)", true,
			`select projects.name, count(*) as cnt from projects, participants
			 where participants.project_id = projects.id and participants.active = true
			 group by projects.name order by projects.name`,
			func(ctx context.Context, db *sqldb.Database) (*sqldb.Result, error) {
				prj, people, err := two(db, "projects", "participants")
				if err != nil {
					return nil, err
				}
				act := people.Schema.ColumnIndex("active")
				var filtered [][2]int
				for _, pr := range joinPairs(prj, "id", people, "project_id") {
					if people.Rows[pr[1]][act].Bool() {
						filtered = append(filtered, pr)
					}
				}
				return groupCount(prj, "name", filtered, 0), nil
			}),
		mk("PhaseService(98)", true,
			`select projects.name, count(*) as cnt from projects, phases
			 where phases.project_id = projects.id group by projects.name order by projects.name`,
			func(ctx context.Context, db *sqldb.Database) (*sqldb.Result, error) {
				prj, ph, err := two(db, "projects", "phases")
				if err != nil {
					return nil, err
				}
				return groupCount(prj, "name", joinPairs(prj, "id", ph, "project_id"), 0), nil
			}),
		mk("RoleDao(15)", true,
			`select count(*) as cnt from roles where kind = 'performer'`,
			func(ctx context.Context, db *sqldb.Database) (*sqldb.Result, error) {
				roles, err := db.Table("roles")
				if err != nil {
					return nil, err
				}
				ki := roles.Schema.ColumnIndex("kind")
				var n int64
				for _, r := range roles.Rows {
					if r[ki].S == "performer" {
						n++
					}
				}
				res := &sqldb.Result{Columns: []string{"cnt"}}
				// Zero aggregates surface as the paper's "null result".
				if n > 0 {
					res.Rows = append(res.Rows, sqldb.Row{sqldb.NewInt(n)})
				}
				return res, nil
			}),

		// ---- thirteen further in-scope functions ----
		mk("ProjectDao.getAll", false,
			`select id, name from projects order by name`,
			scanOrdered("projects", []string{"id", "name"}, "name", false, 0)),
		mk("PhaseDao.byState", false,
			`select id, name from phases where state = 'finished'`,
			scanFiltered("phases", []string{"id", "name"}, "state", "finished")),
		mk("ActivityDao.started", false,
			`select id, name, workload from activities where state = 'started'`,
			scanFiltered("activities", []string{"id", "name", "workload"}, "state", "started")),
		mk("ActivityDao.heavy", false,
			`select id, name, workload from activities where workload >= 150 order by workload desc`,
			func(ctx context.Context, db *sqldb.Database) (*sqldb.Result, error) {
				acts, err := db.Table("activities")
				if err != nil {
					return nil, err
				}
				id, nm, wl := acts.Schema.ColumnIndex("id"), acts.Schema.ColumnIndex("name"), acts.Schema.ColumnIndex("workload")
				var rows []sqldb.Row
				for _, r := range acts.Rows {
					if !r[wl].Null && r[wl].I >= 150 {
						rows = append(rows, sqldb.Row{r[id], r[nm], r[wl]})
					}
				}
				sort.SliceStable(rows, func(a, b int) bool { return rows[a][2].I > rows[b][2].I })
				return &sqldb.Result{Columns: []string{"id", "name", "workload"}, Rows: rows}, nil
			}),
		mk("ConcreteActivityDao.avgProgress", false,
			`select avg(progress) as avg_progress from concrete_activities`,
			func(ctx context.Context, db *sqldb.Database) (*sqldb.Result, error) {
				cas, err := db.Table("concrete_activities")
				if err != nil {
					return nil, err
				}
				pi := cas.Schema.ColumnIndex("progress")
				var sum, n float64
				for _, r := range cas.Rows {
					if !r[pi].Null {
						sum += r[pi].AsFloat()
						n++
					}
				}
				if n == 0 {
					return &sqldb.Result{Columns: []string{"avg_progress"}}, nil
				}
				return &sqldb.Result{Columns: []string{"avg_progress"},
					Rows: []sqldb.Row{{sqldb.NewFloat(sum / n)}}}, nil
			}),
		mk("ParticipantDao.inactive", false,
			`select id, name, email from participants where active = false`,
			func(ctx context.Context, db *sqldb.Database) (*sqldb.Result, error) {
				people, err := db.Table("participants")
				if err != nil {
					return nil, err
				}
				id, nm, em := people.Schema.ColumnIndex("id"), people.Schema.ColumnIndex("name"), people.Schema.ColumnIndex("email")
				ac := people.Schema.ColumnIndex("active")
				res := &sqldb.Result{Columns: []string{"id", "name", "email"}}
				for _, r := range people.Rows {
					if !r[ac].Bool() {
						res.Rows = append(res.Rows, sqldb.Row{r[id], r[nm], r[em]})
					}
				}
				return res, nil
			}),
		mk("RoleDao.list", false,
			`select name, kind from roles order by name`,
			scanOrdered("roles", []string{"name", "kind"}, "name", false, 0)),
		mk("GuidanceDao.checklists", false,
			`select id, name from guidances where gtype = 'checklist'`,
			scanFiltered("guidances", []string{"id", "name"}, "gtype", "checklist")),
		mk("IterationDao.forPhases", false,
			`select iterations.id, iterations.name, phases.name as phase
			 from iterations, phases where iterations.phase_id = phases.id`,
			func(ctx context.Context, db *sqldb.Database) (*sqldb.Result, error) {
				its, err := db.Table("iterations")
				if err != nil {
					return nil, err
				}
				ph, err := db.Table("phases")
				if err != nil {
					return nil, err
				}
				iid, inm := its.Schema.ColumnIndex("id"), its.Schema.ColumnIndex("name")
				pnm := ph.Schema.ColumnIndex("name")
				res := &sqldb.Result{Columns: []string{"id", "name", "phase"}}
				for _, pr := range joinPairs(its, "phase_id", ph, "id") {
					res.Rows = append(res.Rows, sqldb.Row{
						its.Rows[pr[0]][iid], its.Rows[pr[0]][inm], ph.Rows[pr[1]][pnm]})
				}
				return res, nil
			}),
		mk("ProjectDao.launched", false,
			`select id, name from projects where launched = true`,
			func(ctx context.Context, db *sqldb.Database) (*sqldb.Result, error) {
				prj, err := db.Table("projects")
				if err != nil {
					return nil, err
				}
				id, nm := prj.Schema.ColumnIndex("id"), prj.Schema.ColumnIndex("name")
				la := prj.Schema.ColumnIndex("launched")
				res := &sqldb.Result{Columns: []string{"id", "name"}}
				for _, r := range prj.Rows {
					if r[la].Bool() {
						res.Rows = append(res.Rows, sqldb.Row{r[id], r[nm]})
					}
				}
				return res, nil
			}),
		mk("ActivityDao.totalWorkload", false,
			`select sum(workload) as total from activities`,
			func(ctx context.Context, db *sqldb.Database) (*sqldb.Result, error) {
				acts, err := db.Table("activities")
				if err != nil {
					return nil, err
				}
				wl := acts.Schema.ColumnIndex("workload")
				var sum int64
				seen := false
				for _, r := range acts.Rows {
					if !r[wl].Null {
						sum += r[wl].I
						seen = true
					}
				}
				res := &sqldb.Result{Columns: []string{"total"}}
				if seen {
					res.Rows = append(res.Rows, sqldb.Row{sqldb.NewInt(sum)})
				}
				return res, nil
			}),
		mk("ConcreteRoleDescriptorDao.forPeople", false,
			`select participants.name, concrete_role_descriptors.name as descriptor
			 from participants, concrete_role_descriptors
			 where concrete_role_descriptors.participant_id = participants.id`,
			func(ctx context.Context, db *sqldb.Database) (*sqldb.Result, error) {
				people, err := db.Table("participants")
				if err != nil {
					return nil, err
				}
				crds, err := db.Table("concrete_role_descriptors")
				if err != nil {
					return nil, err
				}
				pnm := people.Schema.ColumnIndex("name")
				cnm := crds.Schema.ColumnIndex("name")
				res := &sqldb.Result{Columns: []string{"name", "descriptor"}}
				for _, pr := range joinPairs(people, "id", crds, "participant_id") {
					res.Rows = append(res.Rows, sqldb.Row{people.Rows[pr[0]][pnm], crds.Rows[pr[1]][cnm]})
				}
				return res, nil
			}),
		mk("GuidanceDao.perType", false,
			`select gtype, count(*) as cnt from guidances group by gtype order by gtype`,
			func(ctx context.Context, db *sqldb.Database) (*sqldb.Result, error) {
				gs, err := db.Table("guidances")
				if err != nil {
					return nil, err
				}
				gt := gs.Schema.ColumnIndex("gtype")
				counts := map[string]int64{}
				for _, r := range gs.Rows {
					counts[r[gt].S]++
				}
				var names []string
				for n := range counts {
					names = append(names, n)
				}
				sort.Strings(names)
				res := &sqldb.Result{Columns: []string{"gtype", "cnt"}}
				for _, n := range names {
					res.Rows = append(res.Rows, sqldb.Row{sqldb.NewText(n), sqldb.NewInt(counts[n])})
				}
				return res, nil
			}),
	}
}

// scanFiltered builds an imperative scan with one text equality.
func scanFiltered(table string, cols []string, filterCol, filterVal string) app.ImperativeFunc {
	return func(ctx context.Context, db *sqldb.Database) (*sqldb.Result, error) {
		t, err := db.Table(table)
		if err != nil {
			return nil, err
		}
		fi := t.Schema.ColumnIndex(filterCol)
		idxs := make([]int, len(cols))
		for i, c := range cols {
			idxs[i] = t.Schema.ColumnIndex(c)
		}
		res := &sqldb.Result{Columns: cols}
		for _, r := range t.Rows {
			if r[fi].Null || r[fi].S != filterVal {
				continue
			}
			row := make(sqldb.Row, len(idxs))
			for i, ci := range idxs {
				row[i] = r[ci]
			}
			res.Rows = append(res.Rows, row)
		}
		return res, nil
	}
}

// scanOrdered builds an imperative full scan with ordering and an
// optional limit (limit 0 = none).
func scanOrdered(table string, cols []string, orderCol string, desc bool, limit int) app.ImperativeFunc {
	return func(ctx context.Context, db *sqldb.Database) (*sqldb.Result, error) {
		t, err := db.Table(table)
		if err != nil {
			return nil, err
		}
		idxs := make([]int, len(cols))
		oi := -1
		for i, c := range cols {
			idxs[i] = t.Schema.ColumnIndex(c)
			if c == orderCol {
				oi = i
			}
		}
		res := &sqldb.Result{Columns: cols}
		for _, r := range t.Rows {
			row := make(sqldb.Row, len(idxs))
			for i, ci := range idxs {
				row[i] = r[ci]
			}
			res.Rows = append(res.Rows, row)
		}
		sort.SliceStable(res.Rows, func(a, b int) bool {
			c, err := sqldb.Compare(res.Rows[a][oi], res.Rows[b][oi])
			if err != nil {
				return false
			}
			if desc {
				return c > 0
			}
			return c < 0
		})
		if limit > 0 && len(res.Rows) > limit {
			res.Rows = res.Rows[:limit]
		}
		return res, nil
	}
}
