package wilos

import (
	"context"
	"testing"

	"unmasque/internal/sqlparser"
)

func TestFunctionsMatchGroundTruth(t *testing.T) {
	db := NewDatabase(7)
	for _, fn := range Functions() {
		fn := fn
		t.Run(fn.Name, func(t *testing.T) {
			got, err := fn.Exe.Run(context.Background(), db)
			if err != nil {
				t.Fatalf("imperative run: %v", err)
			}
			if !got.Populated() {
				t.Fatal("empty result on the synthetic instance")
			}
			stmt, err := sqlparser.Parse(fn.Exe.GroundTruthSQL())
			if err != nil {
				t.Fatalf("ground truth parse: %v", err)
			}
			want, err := db.Execute(context.Background(), stmt)
			if err != nil {
				t.Fatalf("ground truth run: %v", err)
			}
			if !got.EqualUnordered(want) {
				t.Fatalf("imperative (%d rows) and SQL (%d rows) diverge", got.RowCount(), want.RowCount())
			}
		})
	}
}

func TestFunctionCounts(t *testing.T) {
	fns := Functions()
	if len(fns) != 22 {
		t.Errorf("paper reports 22 in-scope Wilos functions; got %d", len(fns))
	}
	table3 := 0
	for _, f := range fns {
		if f.Table3 {
			table3++
		}
	}
	if table3 != 9 {
		t.Errorf("Table 3 lists 9 functions; got %d", table3)
	}
}
