package enki

import (
	"context"
	"testing"

	"unmasque/internal/sqldb"
	"unmasque/internal/sqlparser"
)

// TestCommandsMatchGroundTruth runs every imperative command and its
// ground-truth SQL on the same instance and compares results — the
// imperative code must be a faithful single-query program.
func TestCommandsMatchGroundTruth(t *testing.T) {
	db := NewDatabase(5)
	for _, cmd := range Commands() {
		cmd := cmd
		t.Run(cmd.Name, func(t *testing.T) {
			got, err := cmd.Exe.Run(context.Background(), db)
			if err != nil {
				t.Fatalf("imperative run: %v", err)
			}
			if !got.Populated() {
				t.Fatal("imperative command yields an empty result on the synthetic instance")
			}
			stmt, err := sqlparser.Parse(cmd.Exe.GroundTruthSQL())
			if err != nil {
				t.Fatalf("ground truth does not parse: %v", err)
			}
			want, err := db.Execute(context.Background(), stmt)
			if err != nil {
				t.Fatalf("ground truth does not run: %v", err)
			}
			if !got.EqualUnordered(want) {
				t.Fatalf("imperative (%d rows) and SQL (%d rows) diverge", got.RowCount(), want.RowCount())
			}
			// Where the query orders its output, the imperative code
			// must produce the same key sequence.
			if len(stmt.OrderBy) > 0 && got.RowCount() != want.RowCount() {
				t.Error("ordered cardinality mismatch")
			}
		})
	}
}

func TestCommandCount(t *testing.T) {
	if len(Commands()) != 14 {
		t.Errorf("paper reports 14 in-scope Enki commands; got %d", len(Commands()))
	}
	if len(OutOfScopeCommands()) != 3 {
		t.Errorf("17 total commands expected (3 out of scope); got %d out-of-scope", len(OutOfScopeCommands()))
	}
}

func TestDatabaseAnchors(t *testing.T) {
	db := NewDatabase(5)
	posts, err := db.Table("posts")
	if err != nil {
		t.Fatal(err)
	}
	slug, _ := posts.Get(0, "slug")
	if slug.S != "shipping-ruby-1" {
		t.Errorf("anchor slug missing: %q", slug.S)
	}
	cc, _ := posts.Get(0, "approved_comments_count")
	if cc.I < 5 {
		t.Errorf("hot post anchor missing: %d", cc.I)
	}
	if _, err := db.Table("sessions"); err == nil {
		t.Error("unexpected table")
	}
}

func TestResultColumnsStable(t *testing.T) {
	db := NewDatabase(5)
	for _, cmd := range Commands() {
		res, err := cmd.Exe.Run(context.Background(), db)
		if err != nil {
			t.Fatalf("%s: %v", cmd.Name, err)
		}
		if len(res.Columns) == 0 {
			t.Errorf("%s: no output columns", cmd.Name)
		}
		for _, row := range res.Rows {
			if len(row) != len(res.Columns) {
				t.Fatalf("%s: ragged result", cmd.Name)
			}
		}
	}
	_ = sqldb.NewInt // keep import for helpers used above
}
