// Package enki reproduces the paper's Enki experiment (Section 6.3,
// Figure 12): a Ruby-on-Rails blogging application whose commands are
// implemented as genuinely imperative code — table scans, nested-loop
// joins, manual sorting and slicing — over the blog schema. Each
// command is exposed as an app.ImperativeExecutable with its
// ground-truth SQL attached for verification.
//
// Of Enki's 17 commands, 14 fall inside the extractable query class
// (the paper reports the same count); the three out-of-scope commands
// (NULL-draft filtering, month-of-year archive grouping, and OFFSET
// pagination) are listed by OutOfScopeCommands for documentation.
package enki

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"unmasque/internal/app"
	"unmasque/internal/sqldb"
)

// Schemas returns the blog tables.
func Schemas() []sqldb.TableSchema {
	return []sqldb.TableSchema{
		{
			Name: "posts",
			Columns: []sqldb.Column{
				{Name: "id", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
				{Name: "title", Type: sqldb.TText, MaxLen: 80},
				{Name: "slug", Type: sqldb.TText, MaxLen: 80},
				{Name: "body", Type: sqldb.TText, MaxLen: 200},
				{Name: "published_at", Type: sqldb.TDate, MinInt: day("2005-01-01"), MaxInt: day("2012-12-31")},
				{Name: "approved_comments_count", Type: sqldb.TInt, MinInt: 0, MaxInt: 500},
			},
			PrimaryKey: []string{"id"},
		},
		{
			Name: "comments",
			Columns: []sqldb.Column{
				{Name: "id", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
				{Name: "post_id", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
				{Name: "author", Type: sqldb.TText, MaxLen: 40},
				{Name: "body", Type: sqldb.TText, MaxLen: 200},
				{Name: "created_at", Type: sqldb.TDate, MinInt: day("2005-01-01"), MaxInt: day("2012-12-31")},
				{Name: "approved", Type: sqldb.TBool},
			},
			PrimaryKey:  []string{"id"},
			ForeignKeys: []sqldb.ForeignKey{{Column: "post_id", RefTable: "posts", RefColumn: "id"}},
		},
		{
			Name: "tags",
			Columns: []sqldb.Column{
				{Name: "id", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
				{Name: "name", Type: sqldb.TText, MaxLen: 30},
			},
			PrimaryKey: []string{"id"},
		},
		{
			Name: "taggings",
			Columns: []sqldb.Column{
				{Name: "post_id", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
				{Name: "tag_id", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
			},
			ForeignKeys: []sqldb.ForeignKey{
				{Column: "post_id", RefTable: "posts", RefColumn: "id"},
				{Column: "tag_id", RefTable: "tags", RefColumn: "id"},
			},
		},
		{
			Name: "pages",
			Columns: []sqldb.Column{
				{Name: "id", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
				{Name: "title", Type: sqldb.TText, MaxLen: 80},
				{Name: "slug", Type: sqldb.TText, MaxLen: 80},
				{Name: "body", Type: sqldb.TText, MaxLen: 200},
				{Name: "created_at", Type: sqldb.TDate, MinInt: day("2005-01-01"), MaxInt: day("2012-12-31")},
			},
			PrimaryKey: []string{"id"},
		},
	}
}

func day(s string) int64 { return sqldb.MustDate(s).I }

var (
	tagNames   = []string{"rails", "ruby", "golang", "databases", "testing", "deploys", "meta"}
	titleWords = []string{"shipping", "ruby", "notes", "release", "debugging", "profiling", "queries", "indexes"}
)

// NewDatabase builds the synthetic 10 MB-analogue blog instance the
// paper describes ("since native data is not publicly available, we
// created a synthetic database that provided populated results for
// all these commands").
func NewDatabase(seed int64) *sqldb.Database {
	db := sqldb.NewDatabase()
	for _, s := range Schemas() {
		if err := db.CreateTable(s); err != nil {
			panic(err)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	i, s, b := sqldb.NewInt, sqldb.NewText, sqldb.NewBool
	d := func(off int) sqldb.Value { return sqldb.NewDate(day("2005-01-01") + int64(off)) }
	word := func() string { return titleWords[rng.Intn(len(titleWords))] }

	const posts, comments, pages = 120, 500, 12
	for p := 1; p <= posts; p++ {
		title := fmt.Sprintf("%s %s %d", word(), word(), p)
		if p == 1 {
			title = "shipping ruby 1" // anchor for the slug/search commands
		}
		slug := strings.ReplaceAll(title, " ", "-")
		db.Insert("posts", i(int64(p)), s(title), s(slug), s("body of "+title),
			d(rng.Intn(2800)), i(int64(rng.Intn(12))))
	}
	// A couple of guaranteed-hot posts for the popularity command.
	hot, _ := db.Table("posts")
	hot.Set(0, "approved_comments_count", i(25))
	hot.Set(1, "approved_comments_count", i(17))
	for c := 1; c <= comments; c++ {
		db.Insert("comments", i(int64(c)), i(int64(1+rng.Intn(posts))),
			s(fmt.Sprintf("reader%d", rng.Intn(60))), s("comment "+word()),
			d(rng.Intn(2800)), b(rng.Intn(4) != 0))
	}
	for t, name := range tagNames {
		db.Insert("tags", i(int64(t+1)), s(name))
	}
	for p := 1; p <= posts; p++ {
		n := 1 + rng.Intn(3)
		for k := 0; k < n; k++ {
			db.Insert("taggings", i(int64(p)), i(int64(1+rng.Intn(len(tagNames)))))
		}
	}
	for g := 1; g <= pages; g++ {
		title := fmt.Sprintf("page %s %d", word(), g)
		db.Insert("pages", i(int64(g)), s(title), s(strings.ReplaceAll(title, " ", "-")),
			s("content of "+title), d(rng.Intn(2800)))
	}
	return db
}

// Command couples an imperative executable with its presentation
// name.
type Command struct {
	Name string
	Exe  *app.ImperativeExecutable
}

// rowSorter orders rows by one value extractor.
func sortRows(rows []sqldb.Row, key func(sqldb.Row) sqldb.Value, desc bool) {
	sort.SliceStable(rows, func(a, b int) bool {
		c, err := sqldb.Compare(key(rows[a]), key(rows[b]))
		if err != nil {
			return false
		}
		if desc {
			return c > 0
		}
		return c < 0
	})
}

func limitRows(rows []sqldb.Row, n int) []sqldb.Row {
	if len(rows) > n {
		return rows[:n]
	}
	return rows
}

// Commands returns the 14 in-scope Enki commands as imperative
// executables with their ground-truth SQL.
func Commands() []Command {
	mk := func(name, truth string, fn app.ImperativeFunc) Command {
		return Command{Name: name, Exe: app.NewImperativeExecutable("enki/"+name, fn, truth)}
	}
	return []Command{
		mk("recent_posts",
			`select id, title, published_at from posts order by published_at desc limit 5`,
			func(ctx context.Context, db *sqldb.Database) (*sqldb.Result, error) {
				posts, err := db.Table("posts")
				if err != nil {
					return nil, err
				}
				id, ti, pub := colIdx(posts, "id", "title", "published_at")
				var rows []sqldb.Row
				for _, r := range posts.Rows {
					rows = append(rows, sqldb.Row{r[id], r[ti], r[pub]})
				}
				sortRows(rows, func(r sqldb.Row) sqldb.Value { return r[2] }, true)
				return &sqldb.Result{Columns: []string{"id", "title", "published_at"}, Rows: limitRows(rows, 5)}, nil
			}),
		mk("posts_by_tag",
			`select posts.id, posts.title, posts.published_at
			 from posts, taggings, tags
			 where posts.id = taggings.post_id and taggings.tag_id = tags.id and tags.name = 'rails'
			 order by posts.published_at desc limit 5`,
			func(ctx context.Context, db *sqldb.Database) (*sqldb.Result, error) {
				posts, err := db.Table("posts")
				if err != nil {
					return nil, err
				}
				taggings, err := db.Table("taggings")
				if err != nil {
					return nil, err
				}
				tags, err := db.Table("tags")
				if err != nil {
					return nil, err
				}
				pid, pti, ppub := colIdx(posts, "id", "title", "published_at")
				tpost, ttag := colIdx2(taggings, "post_id", "tag_id")
				gid, gname := colIdx2(tags, "id", "name")
				var rows []sqldb.Row
				for _, tg := range taggings.Rows { // nested-loop join, Rails style
					for _, tagRow := range tags.Rows {
						if tagRow[gname].Null || tagRow[gname].S != "rails" {
							continue
						}
						if !sqldb.Equal(tg[ttag], tagRow[gid]) {
							continue
						}
						for _, p := range posts.Rows {
							if sqldb.Equal(p[pid], tg[tpost]) {
								rows = append(rows, sqldb.Row{p[pid], p[pti], p[ppub]})
							}
						}
					}
				}
				sortRows(rows, func(r sqldb.Row) sqldb.Value { return r[2] }, true)
				return &sqldb.Result{Columns: []string{"id", "title", "published_at"}, Rows: limitRows(rows, 5)}, nil
			}),
		mk("post_by_slug",
			`select id, title, body from posts where slug = 'shipping-ruby-1'`,
			func(ctx context.Context, db *sqldb.Database) (*sqldb.Result, error) {
				posts, err := db.Table("posts")
				if err != nil {
					return nil, err
				}
				id, ti, bo := colIdx(posts, "id", "title", "body")
				slug := posts.Schema.ColumnIndex("slug")
				res := &sqldb.Result{Columns: []string{"id", "title", "body"}}
				for _, r := range posts.Rows {
					if !r[slug].Null && r[slug].S == "shipping-ruby-1" {
						res.Rows = append(res.Rows, sqldb.Row{r[id], r[ti], r[bo]})
					}
				}
				return res, nil
			}),
		mk("approved_comments",
			`select author, body, created_at from comments where approved = true order by created_at asc`,
			func(ctx context.Context, db *sqldb.Database) (*sqldb.Result, error) {
				comments, err := db.Table("comments")
				if err != nil {
					return nil, err
				}
				au, bo, cr := colIdx(comments, "author", "body", "created_at")
				ap := comments.Schema.ColumnIndex("approved")
				var rows []sqldb.Row
				for _, r := range comments.Rows {
					if r[ap].Bool() {
						rows = append(rows, sqldb.Row{r[au], r[bo], r[cr]})
					}
				}
				sortRows(rows, func(r sqldb.Row) sqldb.Value { return r[2] }, false)
				return &sqldb.Result{Columns: []string{"author", "body", "created_at"}, Rows: rows}, nil
			}),
		mk("recent_comments",
			`select id, author, created_at from comments order by created_at desc limit 10`,
			func(ctx context.Context, db *sqldb.Database) (*sqldb.Result, error) {
				comments, err := db.Table("comments")
				if err != nil {
					return nil, err
				}
				id, au, cr := colIdx(comments, "id", "author", "created_at")
				var rows []sqldb.Row
				for _, r := range comments.Rows {
					rows = append(rows, sqldb.Row{r[id], r[au], r[cr]})
				}
				sortRows(rows, func(r sqldb.Row) sqldb.Value { return r[2] }, true)
				return &sqldb.Result{Columns: []string{"id", "author", "created_at"}, Rows: limitRows(rows, 10)}, nil
			}),
		mk("pages_index",
			`select title, slug, created_at from pages order by created_at desc limit 5`,
			func(ctx context.Context, db *sqldb.Database) (*sqldb.Result, error) {
				pages, err := db.Table("pages")
				if err != nil {
					return nil, err
				}
				ti, sl, cr := colIdx(pages, "title", "slug", "created_at")
				var rows []sqldb.Row
				for _, r := range pages.Rows {
					rows = append(rows, sqldb.Row{r[ti], r[sl], r[cr]})
				}
				sortRows(rows, func(r sqldb.Row) sqldb.Value { return r[2] }, true)
				return &sqldb.Result{Columns: []string{"title", "slug", "created_at"}, Rows: limitRows(rows, 5)}, nil
			}),
		mk("page_by_slug",
			`select id, title, body from pages where slug like 'page-%'`,
			func(ctx context.Context, db *sqldb.Database) (*sqldb.Result, error) {
				pages, err := db.Table("pages")
				if err != nil {
					return nil, err
				}
				id, ti, bo := colIdx(pages, "id", "title", "body")
				sl := pages.Schema.ColumnIndex("slug")
				res := &sqldb.Result{Columns: []string{"id", "title", "body"}}
				for _, r := range pages.Rows {
					if !r[sl].Null && strings.HasPrefix(r[sl].S, "page-") {
						res.Rows = append(res.Rows, sqldb.Row{r[id], r[ti], r[bo]})
					}
				}
				return res, nil
			}),
		mk("posts_per_tag",
			`select tags.name, count(*) as posts from tags, taggings
			 where tags.id = taggings.tag_id group by tags.name order by tags.name`,
			func(ctx context.Context, db *sqldb.Database) (*sqldb.Result, error) {
				tags, err := db.Table("tags")
				if err != nil {
					return nil, err
				}
				taggings, err := db.Table("taggings")
				if err != nil {
					return nil, err
				}
				gid, gname := colIdx2(tags, "id", "name")
				_, ttag := colIdx2(taggings, "post_id", "tag_id")
				counts := map[string]int64{}
				for _, tg := range taggings.Rows {
					for _, tagRow := range tags.Rows {
						if sqldb.Equal(tg[ttag], tagRow[gid]) {
							counts[tagRow[gname].S]++
						}
					}
				}
				names := make([]string, 0, len(counts))
				for n := range counts {
					names = append(names, n)
				}
				sort.Strings(names)
				res := &sqldb.Result{Columns: []string{"name", "posts"}}
				for _, n := range names {
					res.Rows = append(res.Rows, sqldb.Row{sqldb.NewText(n), sqldb.NewInt(counts[n])})
				}
				return res, nil
			}),
		mk("approved_counts_per_post",
			`select post_id, count(*) as approved from comments where approved = true
			 group by post_id`,
			func(ctx context.Context, db *sqldb.Database) (*sqldb.Result, error) {
				comments, err := db.Table("comments")
				if err != nil {
					return nil, err
				}
				pid := comments.Schema.ColumnIndex("post_id")
				ap := comments.Schema.ColumnIndex("approved")
				counts := map[int64]int64{}
				var order []int64
				for _, r := range comments.Rows {
					if !r[ap].Bool() {
						continue
					}
					if _, ok := counts[r[pid].I]; !ok {
						order = append(order, r[pid].I)
					}
					counts[r[pid].I]++
				}
				res := &sqldb.Result{Columns: []string{"post_id", "approved"}}
				for _, k := range order {
					res.Rows = append(res.Rows, sqldb.Row{sqldb.NewInt(k), sqldb.NewInt(counts[k])})
				}
				return res, nil
			}),
		mk("search_posts",
			`select id, title from posts where title like '%ruby%' order by title`,
			func(ctx context.Context, db *sqldb.Database) (*sqldb.Result, error) {
				posts, err := db.Table("posts")
				if err != nil {
					return nil, err
				}
				id, ti := colIdx2(posts, "id", "title")
				var rows []sqldb.Row
				for _, r := range posts.Rows {
					if !r[ti].Null && strings.Contains(r[ti].S, "ruby") {
						rows = append(rows, sqldb.Row{r[id], r[ti]})
					}
				}
				sortRows(rows, func(r sqldb.Row) sqldb.Value { return r[1] }, false)
				return &sqldb.Result{Columns: []string{"id", "title"}, Rows: rows}, nil
			}),
		mk("popular_posts",
			`select id, title, approved_comments_count from posts
			 where approved_comments_count >= 5
			 order by approved_comments_count desc limit 10`,
			func(ctx context.Context, db *sqldb.Database) (*sqldb.Result, error) {
				posts, err := db.Table("posts")
				if err != nil {
					return nil, err
				}
				id, ti, cc := colIdx(posts, "id", "title", "approved_comments_count")
				var rows []sqldb.Row
				for _, r := range posts.Rows {
					if !r[cc].Null && r[cc].I >= 5 {
						rows = append(rows, sqldb.Row{r[id], r[ti], r[cc]})
					}
				}
				sortRows(rows, func(r sqldb.Row) sqldb.Value { return r[2] }, true)
				return &sqldb.Result{Columns: []string{"id", "title", "approved_comments_count"}, Rows: limitRows(rows, 10)}, nil
			}),
		mk("tag_list",
			`select name from tags order by name`,
			func(ctx context.Context, db *sqldb.Database) (*sqldb.Result, error) {
				tags, err := db.Table("tags")
				if err != nil {
					return nil, err
				}
				_, gname := colIdx2(tags, "id", "name")
				var rows []sqldb.Row
				for _, r := range tags.Rows {
					rows = append(rows, sqldb.Row{r[gname]})
				}
				sortRows(rows, func(r sqldb.Row) sqldb.Value { return r[0] }, false)
				return &sqldb.Result{Columns: []string{"name"}, Rows: rows}, nil
			}),
		mk("approved_comment_total",
			`select count(*) as total from comments where approved = true`,
			func(ctx context.Context, db *sqldb.Database) (*sqldb.Result, error) {
				comments, err := db.Table("comments")
				if err != nil {
					return nil, err
				}
				ap := comments.Schema.ColumnIndex("approved")
				var n int64
				for _, r := range comments.Rows {
					if r[ap].Bool() {
						n++
					}
				}
				res := &sqldb.Result{Columns: []string{"total"}}
				// The paper's framework reads a zero aggregate as a
				// "null result"; the imperative app mirrors that.
				if n > 0 {
					res.Rows = append(res.Rows, sqldb.Row{sqldb.NewInt(n)})
				}
				return res, nil
			}),
		mk("old_archive",
			`select id, title, published_at from posts where published_at <= date '2007-12-31'
			 order by published_at asc`,
			func(ctx context.Context, db *sqldb.Database) (*sqldb.Result, error) {
				posts, err := db.Table("posts")
				if err != nil {
					return nil, err
				}
				id, ti, pub := colIdx(posts, "id", "title", "published_at")
				cutoff := sqldb.MustDate("2007-12-31")
				var rows []sqldb.Row
				for _, r := range posts.Rows {
					if r[pub].Null {
						continue
					}
					if c, err := sqldb.Compare(r[pub], cutoff); err == nil && c <= 0 {
						rows = append(rows, sqldb.Row{r[id], r[ti], r[pub]})
					}
				}
				sortRows(rows, func(r sqldb.Row) sqldb.Value { return r[2] }, false)
				return &sqldb.Result{Columns: []string{"id", "title", "published_at"}, Rows: rows}, nil
			}),
	}
}

// OutOfScopeCommands documents the 3 of 17 Enki commands outside the
// extractable query class, mirroring the paper's 14/17 in-scope
// count.
func OutOfScopeCommands() []string {
	return []string{
		"drafts (filters on published_at IS NULL — NULL predicates)",
		"archive_by_month (groups on extract(month) — non-multilinear function)",
		"paginated_index (uses OFFSET — outside SPJGHAOL)",
	}
}

func colIdx(t *sqldb.Table, a, b, c string) (int, int, int) {
	return t.Schema.ColumnIndex(a), t.Schema.ColumnIndex(b), t.Schema.ColumnIndex(c)
}

func colIdx2(t *sqldb.Table, a, b string) (int, int) {
	return t.Schema.ColumnIndex(a), t.Schema.ColumnIndex(b)
}
