package tpch

// HiddenQueries returns the 12 EQC-compliant TPC-H derivatives used
// for the Figure 9 extraction experiments. Queries whose original
// benchmark form uses out-of-scope constructs (nested sub-queries,
// EXISTS/IN, CASE expressions, disjunctions) are reduced to their
// single-block conjunctive cores, preserving the tables, join graph,
// grouping and aggregation structure — the same methodology the paper
// applies when selecting its "EQC-compliant" suite.
func HiddenQueries() map[string]string {
	return map[string]string{
		// Q1: pricing summary report (full SPJGA with the trilinear
		// sum_charge function exercising the 3-column solver).
		"Q1": `
			select l_returnflag, l_linestatus,
			       sum(l_quantity) as sum_qty,
			       sum(l_extendedprice) as sum_base_price,
			       sum(l_extendedprice * (1 - l_discount)) as sum_disc_price,
			       sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) as sum_charge,
			       avg(l_quantity) as avg_qty,
			       avg(l_extendedprice) as avg_price,
			       avg(l_discount) as avg_disc,
			       count(*) as count_order
			from lineitem
			where l_shipdate <= date '1998-09-02'
			group by l_returnflag, l_linestatus
			order by l_returnflag, l_linestatus`,

		// Q3: shipping priority (the paper's running example).
		"Q3": `
			select l_orderkey,
			       sum(l_extendedprice * (1 - l_discount)) as revenue,
			       o_orderdate, o_shippriority
			from customer, orders, lineitem
			where c_mktsegment = 'BUILDING'
			  and c_custkey = o_custkey
			  and l_orderkey = o_orderkey
			  and o_orderdate < date '1995-03-15'
			  and l_shipdate > date '1995-03-15'
			group by l_orderkey, o_orderdate, o_shippriority
			order by revenue desc, o_orderdate
			limit 10`,

		// Q4: order priority checking (EXISTS sub-query dropped).
		"Q4": `
			select o_orderpriority, count(*) as order_count
			from orders
			where o_orderdate >= date '1993-07-01'
			  and o_orderdate <= date '1993-09-30'
			group by o_orderpriority
			order by o_orderpriority`,

		// Q5: local supplier volume — six tables and a join clique on
		// the nation keys (c_nationkey = s_nationkey = n_nationkey).
		"Q5": `
			select n_name, sum(l_extendedprice * (1 - l_discount)) as revenue
			from customer, orders, lineitem, supplier, nation, region
			where c_custkey = o_custkey
			  and l_orderkey = o_orderkey
			  and l_suppkey = s_suppkey
			  and c_nationkey = s_nationkey
			  and s_nationkey = n_nationkey
			  and n_regionkey = r_regionkey
			  and r_name = 'ASIA'
			  and o_orderdate >= date '1994-01-01'
			  and o_orderdate <= date '1994-12-31'
			group by n_name
			order by revenue desc`,

		// Q6: forecasting revenue change (pure ungrouped aggregate
		// with a bilinear function and a between filter).
		"Q6": `
			select sum(l_extendedprice * l_discount) as revenue
			from lineitem
			where l_shipdate >= date '1994-01-01'
			  and l_shipdate <= date '1994-12-31'
			  and l_discount between 0.05 and 0.07
			  and l_quantity < 24`,

		// Q10: returned item reporting (nested removed; limit kept).
		"Q10": `
			select c_custkey, c_name,
			       sum(l_extendedprice * (1 - l_discount)) as revenue,
			       c_acctbal, n_name, c_address, c_phone
			from customer, orders, lineitem, nation
			where c_custkey = o_custkey
			  and l_orderkey = o_orderkey
			  and c_nationkey = n_nationkey
			  and o_orderdate >= date '1993-10-01'
			  and o_orderdate <= date '1993-12-31'
			  and l_returnflag = 'R'
			group by c_custkey, c_name, c_acctbal, c_phone, n_name, c_address
			order by revenue desc
			limit 20`,

		// Q12: shipping modes and order priority (CASE dropped).
		"Q12": `
			select l_shipmode, count(*) as line_count
			from orders, lineitem
			where o_orderkey = l_orderkey
			  and l_commitdate >= date '1994-01-01'
			  and l_receiptdate <= date '1994-12-31'
			group by l_shipmode
			order by l_shipmode`,

		// Q14: promotion effect (CASE dropped; prefix LIKE kept).
		"Q14": `
			select sum(l_extendedprice * (1 - l_discount)) as promo_revenue
			from lineitem, part
			where l_partkey = p_partkey
			  and p_type like 'PROMO%'
			  and l_shipdate >= date '1995-09-01'
			  and l_shipdate <= date '1995-09-30'`,

		// Q16: parts/supplier relationship (NOT IN and count distinct
		// dropped).
		"Q16": `
			select p_brand, p_type, p_size, count(*) as supplier_cnt
			from partsupp, part
			where p_partkey = ps_partkey
			  and p_size >= 10
			group by p_brand, p_type, p_size
			order by p_brand, p_type, p_size`,

		// Q18: large volume customer (nested HAVING-IN dropped).
		"Q18": `
			select c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice,
			       sum(l_quantity) as total_qty
			from customer, orders, lineitem
			where c_custkey = o_custkey
			  and o_orderkey = l_orderkey
			  and o_totalprice >= 250000
			group by c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice
			order by o_totalprice desc, o_orderdate
			limit 100`,

		// Q19: discounted revenue (the disjunctive arms reduced to a
		// single conjunctive branch).
		"Q19": `
			select sum(l_extendedprice * (1 - l_discount)) as revenue
			from lineitem, part
			where p_partkey = l_partkey
			  and p_brand = 'Brand#12'
			  and p_container = 'SM BOX'
			  and l_quantity between 1 and 11
			  and l_shipmode = 'AIR'`,

		// Q21: suppliers who kept orders waiting (nested removed).
		"Q21": `
			select s_name, count(*) as numwait
			from supplier, lineitem, orders, nation
			where s_suppkey = l_suppkey
			  and o_orderkey = l_orderkey
			  and o_orderstatus = 'F'
			  and s_nationkey = n_nationkey
			  and n_name = 'SAUDI ARABIA'
			  and l_receiptdate > date '1995-01-01'
			group by s_name
			order by s_name
			limit 100`,
	}
}

// QueryOrder lists the Figure 9 queries in presentation order.
func QueryOrder() []string {
	return []string{"Q1", "Q3", "Q4", "Q5", "Q6", "Q10", "Q12", "Q14", "Q16", "Q18", "Q19", "Q21"}
}

// RegalQueries returns the 11 REGAL-template-compliant SPJA queries
// (RQ1–RQ11) of the Figure 8 comparison: single or two-table queries
// with numeric filters, grouping and basic aggregates — the fragment
// both tools can express.
func RegalQueries() map[string]string {
	return map[string]string{
		"RQ1":  `select c_nationkey, count(*) as cnt from customer group by c_nationkey`,
		"RQ2":  `select sum(o_totalprice) as total from orders where o_shippriority = 0`,
		"RQ3":  `select o_custkey, sum(o_totalprice) as total from orders group by o_custkey`,
		"RQ4":  `select c_name, o_totalprice from customer, orders where c_custkey = o_custkey and o_totalprice >= 100000`,
		"RQ5":  `select n_name, count(*) as cnt from nation, supplier where n_nationkey = s_nationkey group by n_name`,
		"RQ6":  `select s_nationkey, avg(s_acctbal) as bal from supplier group by s_nationkey`,
		"RQ7":  `select p_brand, max(p_retailprice) as price from part group by p_brand`,
		"RQ8":  `select c_mktsegment, count(*) as cnt, avg(c_acctbal) as bal from customer group by c_mktsegment`,
		"RQ9":  `select ps_suppkey, sum(ps_availqty) as qty from partsupp, supplier where ps_suppkey = s_suppkey and s_acctbal >= 0 group by ps_suppkey`,
		"RQ10": `select o_orderpriority, count(*) as cnt from orders where o_totalprice <= 150000 group by o_orderpriority`,
		"RQ11": `select n_regionkey, count(*) as cnt from nation, customer where n_nationkey = c_nationkey group by n_regionkey`,
	}
}

// RegalOrder lists the Figure 8 queries in presentation order.
func RegalOrder() []string {
	return []string{"RQ1", "RQ2", "RQ3", "RQ4", "RQ5", "RQ6", "RQ7", "RQ8", "RQ9", "RQ10", "RQ11"}
}

// HavingQueries returns the Section 7 exercise set: EQC queries with
// having predicates (filter and having attribute sets disjoint).
func HavingQueries() map[string]string {
	return map[string]string{
		"H1": `
			select o_custkey, sum(o_totalprice) as total
			from orders
			group by o_custkey
			having sum(o_totalprice) >= 400000`,
		"H2": `
			select l_orderkey, avg(l_quantity) as avg_qty
			from lineitem
			group by l_orderkey
			having avg(l_quantity) >= 25`,
		"H3": `
			select o_custkey, sum(o_totalprice) as total
			from orders
			where o_shippriority = 0
			group by o_custkey
			having sum(o_totalprice) >= 300000 and sum(o_totalprice) <= 2000000`,
	}
}
