package tpch

import (
	"context"
	"testing"

	"unmasque/internal/app"
	"unmasque/internal/sqldb"
	"unmasque/internal/sqlparser"
)

func TestSchemasAreConsistent(t *testing.T) {
	db := sqldb.NewDatabase()
	for _, s := range Schemas() {
		if err := db.CreateTable(s); err != nil {
			t.Fatalf("create %s: %v", s.Name, err)
		}
	}
	// Every FK must reference an existing table/column.
	for _, s := range Schemas() {
		for _, fk := range s.ForeignKeys {
			ref, err := db.Table(fk.RefTable)
			if err != nil {
				t.Errorf("%s FK references missing table %s", s.Name, fk.RefTable)
				continue
			}
			if ref.Schema.ColumnIndex(fk.RefColumn) < 0 {
				t.Errorf("%s FK references missing column %s.%s", s.Name, fk.RefTable, fk.RefColumn)
			}
			if s.ColumnIndex(fk.Column) < 0 {
				t.Errorf("%s FK source column %s missing", s.Name, fk.Column)
			}
		}
	}
	// The schema graph must include the classic TPC-H join edges.
	g := db.SchemaGraph()
	if len(g.Edges) < 8 {
		t.Errorf("schema graph too sparse: %d edges", len(g.Edges))
	}
}

func TestGeneratorDeterminismAndScale(t *testing.T) {
	a := NewDatabase(ScaleTiny, 7)
	b := NewDatabase(ScaleTiny, 7)
	if a.TotalRows() != b.TotalRows() {
		t.Error("same seed should generate identical sizes")
	}
	ta, _ := a.Table("lineitem")
	tb, _ := b.Table("lineitem")
	for i := 0; i < 10; i++ {
		for j := range ta.Rows[i] {
			if ta.Rows[i][j] != tb.Rows[i][j] {
				t.Fatalf("row %d differs between same-seed runs", i)
			}
		}
	}
	small := NewDatabase(ScaleTiny, 7).TotalRows()
	big := NewDatabase(Scale5GB, 7).TotalRows()
	if big <= small {
		t.Errorf("scaling broken: %d vs %d", small, big)
	}
	// Lineitem should dominate the footprint (paper: ~80%).
	rows := Scale5GB.Rows()
	if rows["lineitem"] < rows["orders"]*3 {
		t.Errorf("lineitem share too small: %v", rows)
	}
}

func TestAllHiddenQueriesParseAndRun(t *testing.T) {
	db := NewDatabase(ScaleTiny, 3)
	all := map[string]string{}
	for n, q := range HiddenQueries() {
		all[n] = q
	}
	for n, q := range RegalQueries() {
		all[n] = q
	}
	for n, q := range HavingQueries() {
		all[n] = q
	}
	if err := PlantWitnesses(db, all); err != nil {
		t.Fatalf("witness planting: %v", err)
	}
	for name, sql := range all {
		stmt, err := sqlparser.Parse(sql)
		if err != nil {
			t.Errorf("%s does not parse: %v", name, err)
			continue
		}
		res, err := db.Execute(context.Background(), stmt)
		if err != nil {
			t.Errorf("%s does not execute: %v", name, err)
			continue
		}
		if !res.Populated() {
			t.Errorf("%s yields an empty result even after witness planting", name)
		}
	}
}

func TestQueryOrderMatchesSuite(t *testing.T) {
	hq := HiddenQueries()
	for _, n := range QueryOrder() {
		if _, ok := hq[n]; !ok {
			t.Errorf("QueryOrder lists unknown query %s", n)
		}
	}
	if len(QueryOrder()) != len(hq) {
		t.Errorf("QueryOrder covers %d of %d queries", len(QueryOrder()), len(hq))
	}
	rq := RegalQueries()
	for _, n := range RegalOrder() {
		if _, ok := rq[n]; !ok {
			t.Errorf("RegalOrder lists unknown query %s", n)
		}
	}
}

func TestHiddenQueriesAsExecutables(t *testing.T) {
	db := NewDatabase(ScaleTiny, 3)
	if err := PlantWitnesses(db, HiddenQueries()); err != nil {
		t.Fatal(err)
	}
	for name, sql := range HiddenQueries() {
		exe, err := app.NewSQLExecutable(name, sql)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := exe.Run(context.Background(), db)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Populated() {
			t.Errorf("%s unpopulated", name)
		}
	}
}
