// Package tpch provides a scaled-down TPC-H substrate: the full
// eight-table schema (61 columns with PK/FK linkages), a
// deterministic data generator, and the EQC-compliant hidden-query
// suite evaluated in the paper (12 SPJGAOL derivatives for Figure 9
// plus the 11 REGAL-template-compliant RQ queries of Figure 8).
//
// The paper runs on 5 GB–1 TB PostgreSQL instances; here database
// volume maps to a row-scale factor (see Scale) because extraction
// behaviour depends on schema shape, value domains and predicate
// selectivity, not on absolute bytes.
package tpch

import "unmasque/internal/sqldb"

func days(s string) int64 { return sqldb.MustDate(s).I }

// Schemas returns the eight TPC-H table definitions with domain
// metadata aligned to the generator's value ranges.
func Schemas() []sqldb.TableSchema {
	dateMin, dateMax := days("1992-01-01"), days("1998-12-31")
	return []sqldb.TableSchema{
		{
			Name: "region",
			Columns: []sqldb.Column{
				{Name: "r_regionkey", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
				{Name: "r_name", Type: sqldb.TText, MaxLen: 25},
				{Name: "r_comment", Type: sqldb.TText, MaxLen: 152},
			},
			PrimaryKey: []string{"r_regionkey"},
		},
		{
			Name: "nation",
			Columns: []sqldb.Column{
				{Name: "n_nationkey", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
				{Name: "n_name", Type: sqldb.TText, MaxLen: 25},
				{Name: "n_regionkey", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
				{Name: "n_comment", Type: sqldb.TText, MaxLen: 152},
			},
			PrimaryKey:  []string{"n_nationkey"},
			ForeignKeys: []sqldb.ForeignKey{{Column: "n_regionkey", RefTable: "region", RefColumn: "r_regionkey"}},
		},
		{
			Name: "supplier",
			Columns: []sqldb.Column{
				{Name: "s_suppkey", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
				{Name: "s_name", Type: sqldb.TText, MaxLen: 25},
				{Name: "s_address", Type: sqldb.TText, MaxLen: 40},
				{Name: "s_nationkey", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
				{Name: "s_phone", Type: sqldb.TText, MaxLen: 15},
				{Name: "s_acctbal", Type: sqldb.TFloat, Precision: 2, MinInt: -1000, MaxInt: 10000},
				{Name: "s_comment", Type: sqldb.TText, MaxLen: 101},
			},
			PrimaryKey:  []string{"s_suppkey"},
			ForeignKeys: []sqldb.ForeignKey{{Column: "s_nationkey", RefTable: "nation", RefColumn: "n_nationkey"}},
		},
		{
			Name: "part",
			Columns: []sqldb.Column{
				{Name: "p_partkey", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
				{Name: "p_name", Type: sqldb.TText, MaxLen: 55},
				{Name: "p_mfgr", Type: sqldb.TText, MaxLen: 25},
				{Name: "p_brand", Type: sqldb.TText, MaxLen: 10},
				{Name: "p_type", Type: sqldb.TText, MaxLen: 25},
				{Name: "p_size", Type: sqldb.TInt, MinInt: 1, MaxInt: 50},
				{Name: "p_container", Type: sqldb.TText, MaxLen: 10},
				{Name: "p_retailprice", Type: sqldb.TFloat, Precision: 2, MinInt: 800, MaxInt: 2100},
				{Name: "p_comment", Type: sqldb.TText, MaxLen: 23},
			},
			PrimaryKey: []string{"p_partkey"},
		},
		{
			Name: "partsupp",
			Columns: []sqldb.Column{
				{Name: "ps_partkey", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
				{Name: "ps_suppkey", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
				{Name: "ps_availqty", Type: sqldb.TInt, MinInt: 1, MaxInt: 9999},
				{Name: "ps_supplycost", Type: sqldb.TFloat, Precision: 2, MinInt: 1, MaxInt: 1000},
				{Name: "ps_comment", Type: sqldb.TText, MaxLen: 199},
			},
			PrimaryKey: []string{"ps_partkey", "ps_suppkey"},
			ForeignKeys: []sqldb.ForeignKey{
				{Column: "ps_partkey", RefTable: "part", RefColumn: "p_partkey"},
				{Column: "ps_suppkey", RefTable: "supplier", RefColumn: "s_suppkey"},
			},
		},
		{
			Name: "customer",
			Columns: []sqldb.Column{
				{Name: "c_custkey", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
				{Name: "c_name", Type: sqldb.TText, MaxLen: 25},
				{Name: "c_address", Type: sqldb.TText, MaxLen: 40},
				{Name: "c_nationkey", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
				{Name: "c_phone", Type: sqldb.TText, MaxLen: 15},
				{Name: "c_acctbal", Type: sqldb.TFloat, Precision: 2, MinInt: -1000, MaxInt: 10000},
				{Name: "c_mktsegment", Type: sqldb.TText, MaxLen: 10},
				{Name: "c_comment", Type: sqldb.TText, MaxLen: 117},
			},
			PrimaryKey:  []string{"c_custkey"},
			ForeignKeys: []sqldb.ForeignKey{{Column: "c_nationkey", RefTable: "nation", RefColumn: "n_nationkey"}},
		},
		{
			Name: "orders",
			Columns: []sqldb.Column{
				{Name: "o_orderkey", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
				{Name: "o_custkey", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
				{Name: "o_orderstatus", Type: sqldb.TText, MaxLen: 1},
				{Name: "o_totalprice", Type: sqldb.TFloat, Precision: 2, MinInt: 800, MaxInt: 600000},
				{Name: "o_orderdate", Type: sqldb.TDate, MinInt: dateMin, MaxInt: dateMax},
				{Name: "o_orderpriority", Type: sqldb.TText, MaxLen: 15},
				{Name: "o_clerk", Type: sqldb.TText, MaxLen: 15},
				{Name: "o_shippriority", Type: sqldb.TInt, MinInt: 0, MaxInt: 1},
				{Name: "o_comment", Type: sqldb.TText, MaxLen: 79},
			},
			PrimaryKey:  []string{"o_orderkey"},
			ForeignKeys: []sqldb.ForeignKey{{Column: "o_custkey", RefTable: "customer", RefColumn: "c_custkey"}},
		},
		{
			Name: "lineitem",
			Columns: []sqldb.Column{
				{Name: "l_orderkey", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
				{Name: "l_partkey", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
				{Name: "l_suppkey", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 30},
				{Name: "l_linenumber", Type: sqldb.TInt, MinInt: 1, MaxInt: 7},
				{Name: "l_quantity", Type: sqldb.TFloat, Precision: 2, MinInt: 1, MaxInt: 50},
				{Name: "l_extendedprice", Type: sqldb.TFloat, Precision: 2, MinInt: 800, MaxInt: 105000},
				{Name: "l_discount", Type: sqldb.TFloat, Precision: 2, MinInt: 0, MaxInt: 1},
				{Name: "l_tax", Type: sqldb.TFloat, Precision: 2, MinInt: 0, MaxInt: 1},
				{Name: "l_returnflag", Type: sqldb.TText, MaxLen: 1},
				{Name: "l_linestatus", Type: sqldb.TText, MaxLen: 1},
				{Name: "l_shipdate", Type: sqldb.TDate, MinInt: dateMin, MaxInt: dateMax},
				{Name: "l_commitdate", Type: sqldb.TDate, MinInt: dateMin, MaxInt: dateMax},
				{Name: "l_receiptdate", Type: sqldb.TDate, MinInt: dateMin, MaxInt: dateMax},
				{Name: "l_shipinstruct", Type: sqldb.TText, MaxLen: 25},
				{Name: "l_shipmode", Type: sqldb.TText, MaxLen: 10},
				{Name: "l_comment", Type: sqldb.TText, MaxLen: 44},
			},
			ForeignKeys: []sqldb.ForeignKey{
				{Column: "l_orderkey", RefTable: "orders", RefColumn: "o_orderkey"},
				{Column: "l_partkey", RefTable: "part", RefColumn: "p_partkey"},
				{Column: "l_suppkey", RefTable: "supplier", RefColumn: "s_suppkey"},
			},
		},
	}
}
