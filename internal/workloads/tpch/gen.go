package tpch

import (
	"fmt"
	"math/rand"

	"unmasque/internal/sqldb"
	"unmasque/internal/sqlparser"
	"unmasque/internal/xdata"
)

// Scale maps the paper's database volumes onto row counts. Scale 1.0
// corresponds to roughly 1/1000 of TPC-H SF1 (6k lineitem rows); the
// bench harness uses named scales mirroring the paper's instances.
type Scale float64

// Named scales used by the experiment drivers. The labels echo the
// paper's instance sizes; the values are row-scale factors chosen so
// the harness finishes in seconds while preserving relative table
// sizes (lineitem ~80% of the footprint).
const (
	ScaleTiny  Scale = 0.05 // unit tests
	Scale5GB   Scale = 1.0  // Figure 8 analogue
	Scale100GB Scale = 8.0  // Figure 9 analogue
	Scale200GB Scale = 8.0
	Scale400GB Scale = 11.0
	Scale600GB Scale = 14.0
	Scale800GB Scale = 17.0
	Scale1TB   Scale = 20.0
)

// Rows reports the per-table row counts at this scale.
func (s Scale) Rows() map[string]int {
	f := float64(s)
	atLeast := func(n float64, min int) int {
		v := int(n)
		if v < min {
			return min
		}
		return v
	}
	return map[string]int{
		"region":   5,
		"nation":   25,
		"supplier": atLeast(100*f, 10),
		"part":     atLeast(2000*f, 40),
		"partsupp": atLeast(8000*f, 160),
		"customer": atLeast(1500*f, 30),
		"orders":   atLeast(15000*f, 300),
		"lineitem": atLeast(60000*f, 1200),
	}
}

var (
	regionNames  = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	nationNames  = []string{"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"}
	segments     = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	priorities   = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECI", "5-LOW"}
	shipModes    = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	shipInstruct = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
	containers   = []string{"SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE", "LG BOX", "JUMBO PACK", "WRAP JAR"}
	typePrefixes = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	typeSuffixes = []string{"BRUSHED TIN", "BURNISHED STEEL", "PLATED COPPER", "ANODIZED NICKEL"}
	commentWords = []string{"carefully", "quickly", "special", "requests", "deposits", "pending", "furious", "accounts", "packages", "ironic", "express"}
)

// NewDatabase generates a fresh instance at the given scale,
// deterministic in seed. Witnesses for the hidden-query suites are
// NOT planted here; use PlantWitnesses with the query set a run will
// exercise.
func NewDatabase(scale Scale, seed int64) *sqldb.Database {
	db := sqldb.NewDatabase()
	for _, s := range Schemas() {
		if err := db.CreateTable(s); err != nil {
			panic(err) // static schemas; cannot fail
		}
	}
	rows := scale.Rows()
	rng := rand.New(rand.NewSource(seed))
	i, f, s := sqldb.NewInt, sqldb.NewFloat, sqldb.NewText
	date := func(y0 int, spreadDays int) sqldb.Value {
		base := days(fmt.Sprintf("%d-01-01", y0))
		return sqldb.NewDate(base + int64(rng.Intn(spreadDays)))
	}
	comment := func(n int) sqldb.Value {
		out := ""
		for k := 0; k < n; k++ {
			if k > 0 {
				out += " "
			}
			out += commentWords[rng.Intn(len(commentWords))]
		}
		return s(out)
	}

	for r := 0; r < rows["region"]; r++ {
		mustInsert(db, "region", i(int64(r+1)), s(regionNames[r%len(regionNames)]), comment(3))
	}
	for n := 0; n < rows["nation"]; n++ {
		mustInsert(db, "nation", i(int64(n+1)), s(nationNames[n%len(nationNames)]),
			i(int64(1+n%rows["region"])), comment(3))
	}
	for sp := 1; sp <= rows["supplier"]; sp++ {
		mustInsert(db, "supplier",
			i(int64(sp)), s(fmt.Sprintf("Supplier#%09d", sp)), s(fmt.Sprintf("addr sup %d", sp)),
			i(int64(1+rng.Intn(rows["nation"]))), s(fmt.Sprintf("%02d-%07d", 10+rng.Intn(25), rng.Intn(9999999))),
			f(float64(rng.Intn(1100000))/100-1000), comment(5))
	}
	for p := 1; p <= rows["part"]; p++ {
		mustInsert(db, "part",
			i(int64(p)), s(fmt.Sprintf("part %s %s %d", commentWords[rng.Intn(6)], commentWords[rng.Intn(6)], p)),
			s(fmt.Sprintf("Manufacturer#%d", 1+rng.Intn(5))), s(fmt.Sprintf("Brand#%d%d", 1+rng.Intn(5), 1+rng.Intn(5))),
			s(typePrefixes[rng.Intn(len(typePrefixes))]+" "+typeSuffixes[rng.Intn(len(typeSuffixes))]),
			i(int64(1+rng.Intn(50))), s(containers[rng.Intn(len(containers))]),
			f(800+float64(rng.Intn(130000))/100), comment(2))
	}
	for p := 1; p <= rows["part"]; p++ {
		for k := 0; k < rows["partsupp"]/rows["part"]; k++ {
			mustInsert(db, "partsupp",
				i(int64(p)), i(int64(1+(p*7+k*13)%rows["supplier"])),
				i(int64(1+rng.Intn(9999))), f(1+float64(rng.Intn(99900))/100), comment(6))
		}
	}
	for c := 1; c <= rows["customer"]; c++ {
		mustInsert(db, "customer",
			i(int64(c)), s(fmt.Sprintf("Customer#%09d", c)), s(fmt.Sprintf("addr cust %d", c)),
			i(int64(1+rng.Intn(rows["nation"]))), s(fmt.Sprintf("%02d-%07d", 10+rng.Intn(25), rng.Intn(9999999))),
			f(float64(rng.Intn(1100000))/100-1000), s(segments[rng.Intn(len(segments))]), comment(4))
	}
	statuses := []string{"F", "O", "P"}
	for o := 1; o <= rows["orders"]; o++ {
		mustInsert(db, "orders",
			i(int64(o)), i(int64(1+rng.Intn(rows["customer"]))),
			s(statuses[rng.Intn(len(statuses))]), f(800+float64(rng.Intn(55000000))/100),
			date(1992, 2400), s(priorities[rng.Intn(len(priorities))]),
			s(fmt.Sprintf("Clerk#%09d", rng.Intn(1000))), i(int64(rng.Intn(2))), comment(4))
	}
	flags := []string{"R", "A", "N"}
	lineStatus := []string{"O", "F"}
	for l := 1; l <= rows["lineitem"]; l++ {
		ship := date(1992, 2400)
		commit := sqldb.NewDate(ship.I + int64(rng.Intn(60)) - 30)
		receipt := sqldb.NewDate(ship.I + 1 + int64(rng.Intn(30)))
		mustInsert(db, "lineitem",
			i(int64(1+rng.Intn(rows["orders"]))), i(int64(1+rng.Intn(rows["part"]))),
			i(int64(1+rng.Intn(rows["supplier"]))), i(int64(1+l%7)),
			f(1+float64(rng.Intn(4900))/100), f(800+float64(rng.Intn(10420000))/100),
			f(float64(rng.Intn(11))/100), f(float64(rng.Intn(9))/100),
			s(flags[rng.Intn(len(flags))]), s(lineStatus[rng.Intn(len(lineStatus))]),
			ship, commit, receipt,
			s(shipInstruct[rng.Intn(len(shipInstruct))]), s(shipModes[rng.Intn(len(shipModes))]), comment(3))
	}
	return db
}

func mustInsert(db *sqldb.Database, table string, vals ...sqldb.Value) {
	if err := db.Insert(table, vals...); err != nil {
		panic(fmt.Sprintf("tpch generator: %v", err))
	}
}

// PlantWitnesses inserts, for each hidden query, a handful of joined
// row chains guaranteed to satisfy all its predicates, so every query
// yields a populated result regardless of scale (the paper's setup
// assumption). Witness keys start high above the generated key space
// to avoid accidental joins.
func PlantWitnesses(db *sqldb.Database, queries map[string]string) error {
	schemas := Schemas()
	const keyBase = 50_000_000
	offset := int64(0)
	for name, sql := range queries {
		stmt, err := sqlparser.Parse(sql)
		if err != nil {
			return fmt.Errorf("query %s: %w", name, err)
		}
		analysis, err := xdata.Analyze(stmt, schemas)
		if err != nil {
			return fmt.Errorf("query %s: %w", name, err)
		}
		for w := 0; w < 3; w++ {
			if err := analysis.PlantWitness(db, keyBase+offset, w, nil); err != nil {
				return fmt.Errorf("query %s witness %d: %w", name, w, err)
			}
			offset++
		}
	}
	return nil
}
