// Package registry exposes the repository's workloads as a named
// catalogue of opaque applications. Every entry pairs a black-box
// executable (obfuscated SQL or imperative code) with a builder for
// the database instance it runs on, keyed "workload/app" — e.g.
// tpch/Q3, enki/posts_by_tag, wilos/concrete_activities.
//
// The catalogue used to live inside cmd/unmasque; it is a package of
// its own so every serving surface — the one-shot CLI, the extraction
// daemon (internal/service), benchmarks — resolves application names
// identically.
package registry

import (
	"fmt"
	"sort"

	"unmasque/internal/app"
	"unmasque/internal/sqldb"
	"unmasque/internal/workloads/enki"
	"unmasque/internal/workloads/job"
	"unmasque/internal/workloads/rubis"
	"unmasque/internal/workloads/tpcds"
	"unmasque/internal/workloads/tpch"
	"unmasque/internal/workloads/wilos"
)

// Entry lazily builds the database and executable of one registered
// application. Building is deferred because instantiating a workload
// database is costly and most callers touch a single entry.
type Entry struct {
	build func(seed int64) (app.Executable, *sqldb.Database, error)
}

// Build materializes the application: its executable and a fresh
// database instance generated from seed.
func (e Entry) Build(seed int64) (app.Executable, *sqldb.Database, error) {
	return e.build(seed)
}

// catalogue is assembled once; entries are stateless builders, so the
// map is safe for concurrent readers.
var catalogue = buildCatalogue()

func buildCatalogue() map[string]Entry {
	reg := map[string]Entry{}

	addSQL := func(prefix string, queries map[string]string, mkDB func(seed int64, q map[string]string) (*sqldb.Database, error)) {
		for name, sql := range queries {
			name, sql := name, sql
			reg[prefix+"/"+name] = Entry{build: func(seed int64) (app.Executable, *sqldb.Database, error) {
				db, err := mkDB(seed, map[string]string{name: sql})
				if err != nil {
					return nil, nil, err
				}
				exe, err := app.NewSQLExecutable(prefix+"/"+name, sql)
				return exe, db, err
			}}
		}
	}
	addSQL("tpch", tpch.HiddenQueries(), func(seed int64, q map[string]string) (*sqldb.Database, error) {
		db := tpch.NewDatabase(tpch.ScaleTiny*8, seed)
		return db, tpch.PlantWitnesses(db, q)
	})
	addSQL("tpch", tpch.HavingQueries(), func(seed int64, q map[string]string) (*sqldb.Database, error) {
		db := tpch.NewDatabase(tpch.ScaleTiny*8, seed)
		return db, tpch.PlantWitnesses(db, q)
	})
	addSQL("tpcds", tpcds.HiddenQueries(), func(seed int64, q map[string]string) (*sqldb.Database, error) {
		db := tpcds.NewDatabase(tpcds.ScaleTiny, seed)
		return db, tpcds.PlantWitnesses(db, q)
	})
	addSQL("job", job.HiddenQueries(), func(seed int64, q map[string]string) (*sqldb.Database, error) {
		db := job.NewDatabase(job.ScaleTiny, seed)
		return db, job.PlantWitnesses(db, q)
	})

	for _, c := range enki.Commands() {
		c := c
		reg["enki/"+c.Name] = Entry{build: func(seed int64) (app.Executable, *sqldb.Database, error) {
			return c.Exe, enki.NewDatabase(seed), nil
		}}
	}
	for _, f := range wilos.Functions() {
		f := f
		reg["wilos/"+f.Name] = Entry{build: func(seed int64) (app.Executable, *sqldb.Database, error) {
			return f.Exe, wilos.NewDatabase(seed), nil
		}}
	}
	for _, s := range rubis.Servlets() {
		s := s
		reg["rubis/"+s.Name] = Entry{build: func(seed int64) (app.Executable, *sqldb.Database, error) {
			return s.Exe, rubis.NewDatabase(seed), nil
		}}
	}
	return reg
}

// Names lists every registered application, sorted.
func Names() []string {
	out := make([]string, 0, len(catalogue))
	for n := range catalogue {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Lookup finds a registered application by name.
func Lookup(name string) (Entry, bool) {
	e, ok := catalogue[name]
	return e, ok
}

// Build materializes a registered application by name.
func Build(name string, seed int64) (app.Executable, *sqldb.Database, error) {
	e, ok := catalogue[name]
	if !ok {
		return nil, nil, fmt.Errorf("unknown application %q", name)
	}
	return e.Build(seed)
}

// AdhocDatabase builds a bare workload database instance for an
// ad-hoc hidden query, returning the instance plus the witness
// planter to call with the queries it must produce rows for (a no-op
// for the imperative workloads, whose generators are already
// witness-rich).
func AdhocDatabase(workload string, seed int64) (*sqldb.Database, func(map[string]string) error, error) {
	switch workload {
	case "tpch":
		db := tpch.NewDatabase(tpch.ScaleTiny*8, seed)
		return db, func(q map[string]string) error { return tpch.PlantWitnesses(db, q) }, nil
	case "tpcds":
		db := tpcds.NewDatabase(tpcds.ScaleTiny, seed)
		return db, func(q map[string]string) error { return tpcds.PlantWitnesses(db, q) }, nil
	case "job":
		db := job.NewDatabase(job.ScaleTiny, seed)
		return db, func(q map[string]string) error { return job.PlantWitnesses(db, q) }, nil
	case "enki":
		return enki.NewDatabase(seed), func(map[string]string) error { return nil }, nil
	case "wilos":
		return wilos.NewDatabase(seed), func(map[string]string) error { return nil }, nil
	case "rubis":
		return rubis.NewDatabase(seed), func(map[string]string) error { return nil }, nil
	default:
		return nil, nil, fmt.Errorf("unknown workload %q", workload)
	}
}
