package eqcequiv

import (
	"fmt"
	"sort"
	"strings"

	"unmasque/internal/sqldb"
)

// Canonicalization rewrites an EQC statement into a normal form in
// which syntactically different but trivially equivalent queries
// become identical ASTs: table-qualified lower-case column names,
// sorted from clause, between expanded into inclusive bounds, strict
// integral comparisons widened to inclusive ones, literals moved to
// the right-hand side, and conjuncts/disjuncts/group keys sorted by
// their rendering. Projections and order keys keep their positions —
// those are part of the query's output contract, not of its logic.

// canonicalize deep-copies and normalizes a statement. Schemas drive
// column resolution; an unresolvable column is an error.
func canonicalize(stmt *sqldb.SelectStmt, schemas []sqldb.TableSchema) (*sqldb.SelectStmt, error) {
	byName := map[string]sqldb.TableSchema{}
	for _, s := range schemas {
		byName[strings.ToLower(s.Name)] = s
	}
	out := sqldb.CloneStmt(stmt)
	for i, t := range out.From {
		out.From[i] = strings.ToLower(t)
		if _, ok := byName[out.From[i]]; !ok {
			return nil, fmt.Errorf("eqcequiv: no schema for table %s", t)
		}
	}
	qualify := func(e sqldb.Expr) error {
		var err error
		walkColumns(e, func(c *sqldb.ColumnExpr) {
			c.Table = strings.ToLower(c.Table)
			c.Column = strings.ToLower(c.Column)
			if c.Table != "" {
				return
			}
			for _, t := range out.From {
				if byName[t].ColumnIndex(c.Column) >= 0 {
					c.Table = t
					return
				}
			}
			if err == nil {
				err = fmt.Errorf("eqcequiv: cannot resolve column %s", c.Column)
			}
		})
		return err
	}
	exprs := make([]sqldb.Expr, 0, len(out.Items)+len(out.GroupBy)+len(out.OrderBy)+2)
	for _, it := range out.Items {
		exprs = append(exprs, it.Expr)
	}
	exprs = append(exprs, out.GroupBy...)
	if out.Where != nil {
		exprs = append(exprs, out.Where)
	}
	if out.Having != nil {
		exprs = append(exprs, out.Having)
	}
	for _, k := range out.OrderBy {
		// Order keys may reference output aliases rather than table
		// columns; those legitimately stay unqualified.
		if c, ok := k.Expr.(*sqldb.ColumnExpr); ok && c.Table == "" {
			c.Column = strings.ToLower(c.Column)
			for _, t := range out.From {
				if byName[t].ColumnIndex(c.Column) >= 0 {
					c.Table = t
					break
				}
			}
			continue
		}
		exprs = append(exprs, k.Expr)
	}
	for _, e := range exprs {
		if err := qualify(e); err != nil {
			return nil, err
		}
	}

	sort.Strings(out.From)
	out.Where = normalizePredicate(out.Where)
	out.Having = normalizePredicate(out.Having)
	sort.Slice(out.GroupBy, func(i, j int) bool {
		return out.GroupBy[i].String() < out.GroupBy[j].String()
	})
	return out, nil
}

// walkColumns visits every column node of an expression tree.
func walkColumns(e sqldb.Expr, fn func(c *sqldb.ColumnExpr)) {
	switch x := e.(type) {
	case *sqldb.ColumnExpr:
		fn(x)
	case *sqldb.BinaryExpr:
		walkColumns(x.L, fn)
		walkColumns(x.R, fn)
	case *sqldb.NegExpr:
		walkColumns(x.X, fn)
	case *sqldb.NotExpr:
		walkColumns(x.X, fn)
	case *sqldb.BetweenExpr:
		walkColumns(x.X, fn)
		walkColumns(x.Lo, fn)
		walkColumns(x.Hi, fn)
	case *sqldb.LikeExpr:
		walkColumns(x.X, fn)
	case *sqldb.IsNullExpr:
		walkColumns(x.X, fn)
	case *sqldb.AggExpr:
		if x.Arg != nil {
			walkColumns(x.Arg, fn)
		}
	}
}

// normalizePredicate rewrites a boolean tree into conjunct normal
// order: every conjunct individually normalized, then the flattened
// conjunct list sorted by rendering and re-joined left-deep.
func normalizePredicate(e sqldb.Expr) sqldb.Expr {
	if e == nil {
		return nil
	}
	var conjs []sqldb.Expr
	for _, c := range sqldb.Conjuncts(e) {
		// Re-flatten after normalization: a between conjunct expands
		// into a fresh top-level conjunction.
		conjs = append(conjs, sqldb.Conjuncts(normalizeConjunct(c))...)
	}
	sort.Slice(conjs, func(i, j int) bool { return conjs[i].String() < conjs[j].String() })
	dedup := conjs[:0]
	for i, c := range conjs {
		if i > 0 && c.String() == conjs[i-1].String() {
			continue
		}
		dedup = append(dedup, c)
	}
	return sqldb.AndAll(dedup)
}

// normalizeConjunct normalizes one conjunct: between expansion,
// literal-side and strictness normalization, OR-arm sorting.
func normalizeConjunct(e sqldb.Expr) sqldb.Expr {
	switch x := e.(type) {
	case *sqldb.BetweenExpr:
		lo, lok := x.Lo.(*sqldb.LiteralExpr)
		hi, hok := x.Hi.(*sqldb.LiteralExpr)
		if lok && hok {
			if cmp, err := sqldb.Compare(lo.Val, hi.Val); err == nil && cmp == 0 {
				return normalizeConjunct(sqldb.Bin(sqldb.OpEq, x.X, x.Lo))
			}
		}
		ge := normalizeConjunct(sqldb.Bin(sqldb.OpGe, x.X, x.Lo))
		le := normalizeConjunct(sqldb.Bin(sqldb.OpLe, sqldb.CloneExpr(x.X), x.Hi))
		return sqldb.Bin(sqldb.OpAnd, ge, le)
	case *sqldb.BinaryExpr:
		if x.Op == sqldb.OpOr {
			arms := disjuncts(x)
			for i := range arms {
				arms[i] = normalizeConjunct(arms[i])
			}
			sort.Slice(arms, func(i, j int) bool { return arms[i].String() < arms[j].String() })
			out := arms[0]
			for _, a := range arms[1:] {
				out = sqldb.Bin(sqldb.OpOr, out, a)
			}
			return out
		}
		if x.Op == sqldb.OpAnd {
			return normalizePredicate(x)
		}
		if x.Op.IsComparison() {
			return normalizeComparison(x)
		}
	}
	return e
}

// disjuncts flattens an OR tree into its arms.
func disjuncts(e sqldb.Expr) []sqldb.Expr {
	if b, ok := e.(*sqldb.BinaryExpr); ok && b.Op == sqldb.OpOr {
		return append(disjuncts(b.L), disjuncts(b.R)...)
	}
	return []sqldb.Expr{e}
}

// mirror gives the comparison that holds when the operands swap.
func mirror(op sqldb.BinOp) sqldb.BinOp {
	switch op {
	case sqldb.OpLt:
		return sqldb.OpGt
	case sqldb.OpLe:
		return sqldb.OpGe
	case sqldb.OpGt:
		return sqldb.OpLt
	case sqldb.OpGe:
		return sqldb.OpLe
	default:
		return op
	}
}

// normalizeComparison puts literals on the right, orders symmetric
// column comparisons by rendering, and widens strict comparisons on
// integral literals to their inclusive form (x > 5 ⇒ x >= 6), which
// makes "between"-derived and strict spellings of the same range
// coincide.
func normalizeComparison(x *sqldb.BinaryExpr) sqldb.Expr {
	if _, ok := x.L.(*sqldb.LiteralExpr); ok {
		if _, rlit := x.R.(*sqldb.LiteralExpr); !rlit {
			x = sqldb.Bin(mirror(x.Op), x.R, x.L)
		}
	}
	_, llit := x.L.(*sqldb.LiteralExpr)
	_, rlit := x.R.(*sqldb.LiteralExpr)
	if !llit && !rlit && x.L.String() > x.R.String() {
		x = sqldb.Bin(mirror(x.Op), x.R, x.L)
	}
	if lit, ok := x.R.(*sqldb.LiteralExpr); ok {
		integral := lit.Val.Typ == sqldb.TInt || lit.Val.Typ == sqldb.TDate
		one := sqldb.NewInt(1)
		if integral && x.Op == sqldb.OpGt {
			if v, err := sqldb.Add(lit.Val, one); err == nil {
				return sqldb.Bin(sqldb.OpGe, x.L, sqldb.Lit(v))
			}
		}
		if integral && x.Op == sqldb.OpLt {
			if v, err := sqldb.Sub(lit.Val, one); err == nil {
				return sqldb.Bin(sqldb.OpLe, x.L, sqldb.Lit(v))
			}
		}
	}
	return x
}
