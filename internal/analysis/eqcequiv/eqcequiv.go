// Package eqcequiv is a bounded symbolic equivalence checker for the
// extractor's query class (EQC: single-block select/project/join with
// optional aggregation, grouping, ordering and limit). Given two EQC
// ASTs and the schema's integrity constraints it decides, by
// exhaustive enumeration of canonical databases with at most k rows
// per table over "interesting" value domains, whether the two queries
// agree on every such database — returning either a bounded
// equivalence proof or a concrete counterexample database together
// with the differing result digests.
//
// The verdict is sound in one direction only: a counterexample is a
// real inequivalence witness, but Equivalent means "equivalent on
// every canonical database within the bound". Two queries that only
// differ on larger databases, or on values outside the boundary
// domains derived from their predicates, are beyond the bound — the
// classic small-scope caveat of bounded verification (VeriEQL). The
// checker is fully deterministic: the same AST pair and options
// produce the identical verdict, counterexample and digests on every
// run.
package eqcequiv

import (
	"context"
	"fmt"
	"strings"

	"unmasque/internal/sqldb"
	"unmasque/internal/xdata"
)

// Options configures a bounded check.
type Options struct {
	// Bound is the maximum rows per table in enumerated databases
	// (the k of the proof). Zero selects DefaultBound.
	Bound int

	// MaxColumnValues caps the value domain of a differing column.
	// Zero selects DefaultMaxColumnValues.
	MaxColumnValues int

	// MaxInstances bounds the number of databases evaluated before
	// the checker gives up with Exhausted. Zero selects
	// DefaultMaxInstances.
	MaxInstances int
}

// Defaults for Options fields left zero.
const (
	DefaultBound           = 2
	DefaultMaxColumnValues = 6
	DefaultMaxInstances    = 200000
)

func (o Options) normalized() Options {
	if o.Bound <= 0 {
		o.Bound = DefaultBound
	}
	if o.MaxColumnValues <= 0 {
		o.MaxColumnValues = DefaultMaxColumnValues
	}
	if o.MaxInstances <= 0 {
		o.MaxInstances = DefaultMaxInstances
	}
	return o
}

// Outcome classifies a verdict.
type Outcome int

const (
	// Equivalent: the queries agree on every canonical database
	// within the bound.
	Equivalent Outcome = iota
	// Inequivalent: a concrete counterexample database was found.
	Inequivalent
	// Exhausted: no counterexample found, but the enumeration was
	// truncated (instance budget or domain caps), so no proof either.
	Exhausted
)

func (o Outcome) String() string {
	switch o {
	case Equivalent:
		return "equivalent"
	case Inequivalent:
		return "inequivalent"
	case Exhausted:
		return "exhausted"
	default:
		return "?outcome?"
	}
}

// Counterexample is a database on which the two queries disagree.
type Counterexample struct {
	DB *sqldb.Database
	// DigestA/DigestB hash the two results with column names
	// normalized away; for an order-only disagreement the row
	// position is folded in, so the digests always differ.
	DigestA, DigestB sqldb.ResultDigest
	RowsA, RowsB     int
	// OrderOnly marks a disagreement in row order alone (the row
	// multisets agree).
	OrderOnly bool
}

// Verdict is the result of a bounded check.
type Verdict struct {
	Outcome Outcome
	// Bound is the k the verdict holds for.
	Bound int
	// Proof tells how an Equivalent verdict was reached: "canonical"
	// (the ASTs normalize to the same query) or "enumeration".
	Proof string
	// Instances is the number of databases evaluated.
	Instances int
	// Counterexample is set iff Outcome is Inequivalent.
	Counterexample *Counterexample
}

func (v *Verdict) String() string {
	switch v.Outcome {
	case Equivalent:
		return fmt.Sprintf("equivalent up to %d rows/table (%s, %d instances)", v.Bound, v.Proof, v.Instances)
	case Inequivalent:
		ce := v.Counterexample
		return fmt.Sprintf("inequivalent: counterexample with %d rows (%d vs %d result rows, instance #%d)",
			ce.DB.TotalRows(), ce.RowsA, ce.RowsB, v.Instances)
	default:
		return fmt.Sprintf("exhausted after %d instances (no counterexample, no proof)", v.Instances)
	}
}

// Check decides bounded equivalence of two EQC statements under the
// given schemas. It never mutates its arguments.
func Check(a, b *sqldb.SelectStmt, schemas []sqldb.TableSchema, opt Options) (*Verdict, error) {
	opt = opt.normalized()
	ca, err := canonicalize(a, schemas)
	if err != nil {
		return nil, err
	}
	cb, err := canonicalize(b, schemas)
	if err != nil {
		return nil, err
	}
	if ca.String() == cb.String() {
		return &Verdict{Outcome: Equivalent, Bound: opt.Bound, Proof: "canonical"}, nil
	}

	aa, err := xdata.Analyze(ca, schemas)
	if err != nil {
		return nil, fmt.Errorf("eqcequiv: left query: %w", err)
	}
	ab, err := xdata.Analyze(cb, schemas)
	if err != nil {
		return nil, fmt.Errorf("eqcequiv: right query: %w", err)
	}
	diff := diffColumns(ca, cb)
	hints := havingHints(ca, cb, schemas)
	enum, err := buildEnumerator([]*xdata.Analysis{aa, ab}, schemas, diff, hints, opt)
	if err != nil {
		return nil, err
	}

	orderIdx := orderKeyIndexes(ca)
	for _, i := range orderKeyIndexes(cb) {
		found := false
		for _, j := range orderIdx {
			if i == j {
				found = true
			}
		}
		if !found {
			orderIdx = append(orderIdx, i)
		}
	}
	checkOrder := len(ca.OrderBy) > 0 && len(cb.OrderBy) > 0

	var ce *Counterexample
	complete, visited, err := enum.enumerate(opt.MaxInstances, func(db *sqldb.Database) (bool, error) {
		c, err := evaluate(ca, cb, db, checkOrder, orderIdx)
		if err != nil {
			return false, err
		}
		if c != nil {
			ce = c
			return true, nil
		}
		return false, nil
	})
	if err != nil {
		return nil, err
	}
	v := &Verdict{Bound: opt.Bound, Instances: visited}
	switch {
	case ce != nil:
		v.Outcome = Inequivalent
		v.Counterexample = ce
	case complete:
		v.Outcome = Equivalent
		v.Proof = "enumeration"
	default:
		v.Outcome = Exhausted
	}
	return v, nil
}

// evaluate runs both queries on one instance and returns a
// counterexample when they disagree, nil when they agree. A query
// erroring on the instance while the other evaluates counts as a
// disagreement (the failing side has no result at all); both erroring
// makes the instance unusable and it is skipped.
func evaluate(a, b *sqldb.SelectStmt, db *sqldb.Database, checkOrder bool, orderIdx []int) (*Counterexample, error) {
	ctx := context.Background()
	ra, errA := db.Execute(ctx, a)
	rb, errB := db.Execute(ctx, b)
	if errA != nil && errB != nil {
		return nil, nil
	}
	if errA != nil || errB != nil {
		return errCounterexample(db, ra, rb, errA, errB), nil
	}
	ra, rb = normalize(ra), normalize(rb)
	if !ra.EqualUnordered(rb) {
		return &Counterexample{
			DB:      db.Clone(),
			DigestA: anonDigest(ra, false),
			DigestB: anonDigest(rb, false),
			RowsA:   ra.RowCount(),
			RowsB:   rb.RowCount(),
		}, nil
	}
	if checkOrder && !orderedAgree(ra, rb, orderIdx) {
		return &Counterexample{
			DB:        db.Clone(),
			DigestA:   anonDigest(ra, true),
			DigestB:   anonDigest(rb, true),
			RowsA:     ra.RowCount(),
			RowsB:     rb.RowCount(),
			OrderOnly: true,
		}, nil
	}
	return nil, nil
}

// errCounterexample encodes a one-sided evaluation failure. The
// failing side's digest hashes the error text, which is stable for a
// given AST+instance, keeping the verdict deterministic.
func errCounterexample(db *sqldb.Database, ra, rb *sqldb.Result, errA, errB error) *Counterexample {
	ce := &Counterexample{DB: db.Clone()}
	if errA != nil {
		ce.DigestA = errDigest(errA)
		ce.DigestB = anonDigest(normalize(rb), false)
		ce.RowsB = rb.RowCount()
	} else {
		ce.DigestA = anonDigest(normalize(ra), false)
		ce.DigestB = errDigest(errB)
		ce.RowsA = ra.RowCount()
	}
	return ce
}

func errDigest(err error) sqldb.ResultDigest {
	r := &sqldb.Result{Columns: []string{"error"}, Rows: []sqldb.Row{{sqldb.NewText(err.Error())}}}
	return r.Digest()
}

// normalize maps any unpopulated result (no rows, or the null row of
// an ungrouped aggregate over empty input) to a bare empty result,
// mirroring the extraction checker's comparison semantics.
func normalize(r *sqldb.Result) *sqldb.Result {
	if r == nil {
		return &sqldb.Result{}
	}
	if !r.Populated() {
		return &sqldb.Result{Columns: r.Columns}
	}
	return r
}

// anonDigest hashes a result with column names replaced by positions
// (the checker compares content, not naming). withOrder folds each
// row's position in, so two results equal as multisets but ordered
// differently digest differently.
func anonDigest(r *sqldb.Result, withOrder bool) sqldb.ResultDigest {
	c := r.Clone()
	if c == nil {
		c = &sqldb.Result{}
	}
	for i := range c.Columns {
		c.Columns[i] = fmt.Sprintf("c%d", i)
	}
	if withOrder {
		c.Columns = append([]string{"pos"}, c.Columns...)
		for i := range c.Rows {
			c.Rows[i] = append(sqldb.Row{sqldb.NewInt(int64(i))}, c.Rows[i]...)
		}
	}
	return c.Digest()
}

// orderedAgree checks that both orderings present the order-key
// columns identically, position by position (float-tolerant). Only
// order-key columns are pinned: ties may legitimately permute the
// remaining columns.
func orderedAgree(a, b *sqldb.Result, orderIdx []int) bool {
	if len(orderIdx) == 0 {
		// No key could be mapped to an output column; the physical
		// order is unobservable through the projection, so there is
		// nothing to compare.
		return true
	}
	if a.RowCount() != b.RowCount() {
		return false
	}
	for i := range a.Rows {
		for _, j := range orderIdx {
			if j >= len(a.Rows[i]) || j >= len(b.Rows[i]) {
				continue
			}
			if !sqldb.ApproxEqual(a.Rows[i][j], b.Rows[i][j]) {
				return false
			}
		}
	}
	return true
}

// orderKeyIndexes maps a statement's order keys to output column
// positions: first by exact (qualified) rendering against each
// projected expression, then — only for a genuinely unqualified
// column key, which can be an alias reference — by the item's
// alias/output name. Matching bare names before renderings would pin
// the wrong position when two from-clause tables project a
// same-named column. Keys that are not projected are dropped (their
// order is unobservable in the result).
func orderKeyIndexes(s *sqldb.SelectStmt) []int {
	var out []int
	for _, k := range s.OrderBy {
		match := -1
		for i, it := range s.Items {
			if it.Expr.String() == k.Expr.String() {
				match = i
				break
			}
		}
		if match < 0 {
			if c, ok := k.Expr.(*sqldb.ColumnExpr); ok && c.Table == "" {
				for i, it := range s.Items {
					if it.OutputName() == c.Column {
						match = i
						break
					}
				}
			}
		}
		if match >= 0 {
			out = append(out, match)
		}
	}
	return out
}

// havingHints extracts aggregate boundaries from both queries' having
// clauses: for a conjunct agg(col) cmp literal, a one-row group makes
// sum/min/max/avg(col) equal col, so planting the literal and its
// off-by-one neighbours in col's domain lets the enumeration land a
// group exactly on the boundary. count aggregates compare row counts,
// not values, and get no hint.
func havingHints(a, b *sqldb.SelectStmt, schemas []sqldb.TableSchema) map[sqldb.ColRef][]sqldb.Value {
	byName := map[string]sqldb.TableSchema{}
	for _, s := range schemas {
		byName[strings.ToLower(s.Name)] = s
	}
	hints := map[sqldb.ColRef][]sqldb.Value{}
	collect := func(s *sqldb.SelectStmt) {
		for _, conj := range sqldb.Conjuncts(s.Having) {
			cmp, ok := conj.(*sqldb.BinaryExpr)
			if !ok || !cmp.Op.IsComparison() {
				continue
			}
			agg, ok := cmp.L.(*sqldb.AggExpr)
			if !ok || agg.Star || agg.Fn == sqldb.AggCount {
				continue
			}
			col, ok := agg.Arg.(*sqldb.ColumnExpr)
			if !ok || col.Table == "" {
				continue
			}
			lit, ok := cmp.R.(*sqldb.LiteralExpr)
			if !ok {
				continue
			}
			def, err := byName[col.Table].Column(col.Column)
			if err != nil {
				continue
			}
			ref := col.Ref()
			delta := sqldb.NewInt(1)
			if lit.Val.Typ == sqldb.TFloat || def.Type == sqldb.TFloat {
				delta = sqldb.NewFloat(0.01)
			}
			vals := []sqldb.Value{coerceTo(def, lit.Val)}
			if v, err := sqldb.Sub(lit.Val, delta); err == nil {
				vals = append(vals, coerceTo(def, v))
			}
			if v, err := sqldb.Add(lit.Val, delta); err == nil {
				vals = append(vals, coerceTo(def, v))
			}
			hints[ref] = append(hints[ref], vals...)
		}
	}
	collect(a)
	collect(b)
	return hints
}

// coerceTo adapts a literal to the column's type for insertion.
func coerceTo(def sqldb.Column, v sqldb.Value) sqldb.Value {
	if def.Type == sqldb.TFloat && v.Typ == sqldb.TInt {
		return sqldb.NewFloat(float64(v.I))
	}
	if def.Type == sqldb.TDate && v.Typ == sqldb.TInt {
		return sqldb.NewDate(v.I)
	}
	return v
}

// diffColumns collects the columns on which the two canonical
// statements disagree — the only columns whose domains need more than
// one representative value for a difference to surface. Everything is
// compared on canonical renderings, so the set is deterministic.
func diffColumns(a, b *sqldb.SelectStmt) map[sqldb.ColRef]bool {
	diff := map[sqldb.ColRef]bool{}
	addCols := func(stmt *sqldb.SelectStmt, e sqldb.Expr) {
		for _, c := range sqldb.ColumnsOf(e) {
			if c.Table != "" {
				diff[c.Ref()] = true
				continue
			}
			// Alias reference (order keys): chase the projected item.
			for _, it := range stmt.Items {
				if it.OutputName() == c.Column {
					for _, ic := range sqldb.ColumnsOf(it.Expr) {
						diff[ic.Ref()] = true
					}
				}
			}
		}
	}

	symmetricDiff := func(as, bs []sqldb.Expr) ([]sqldb.Expr, []sqldb.Expr) {
		counts := map[string]int{}
		for _, e := range bs {
			counts[e.String()]++
		}
		var onlyA []sqldb.Expr
		for _, e := range as {
			if counts[e.String()] > 0 {
				counts[e.String()]--
			} else {
				onlyA = append(onlyA, e)
			}
		}
		counts = map[string]int{}
		for _, e := range as {
			counts[e.String()]++
		}
		var onlyB []sqldb.Expr
		for _, e := range bs {
			if counts[e.String()] > 0 {
				counts[e.String()]--
			} else {
				onlyB = append(onlyB, e)
			}
		}
		return onlyA, onlyB
	}

	preds := func(s *sqldb.SelectStmt) []sqldb.Expr {
		return append(sqldb.Conjuncts(s.Where), sqldb.Conjuncts(s.Having)...)
	}
	da, dbb := symmetricDiff(preds(a), preds(b))
	for _, e := range da {
		addCols(a, e)
	}
	for _, e := range dbb {
		addCols(b, e)
	}

	ga, gb := symmetricDiff(a.GroupBy, b.GroupBy)
	for _, e := range ga {
		addCols(a, e)
	}
	for _, e := range gb {
		addCols(b, e)
	}

	n := len(a.Items)
	if len(b.Items) > n {
		n = len(b.Items)
	}
	for i := 0; i < n; i++ {
		var ea, eb sqldb.Expr
		if i < len(a.Items) {
			ea = a.Items[i].Expr
		}
		if i < len(b.Items) {
			eb = b.Items[i].Expr
		}
		if ea != nil && eb != nil && ea.String() == eb.String() {
			continue
		}
		if ea != nil {
			addCols(a, ea)
		}
		if eb != nil {
			addCols(b, eb)
		}
	}

	n = len(a.OrderBy)
	if len(b.OrderBy) > n {
		n = len(b.OrderBy)
	}
	for i := 0; i < n; i++ {
		var ka, kb *sqldb.OrderKey
		if i < len(a.OrderBy) {
			ka = &a.OrderBy[i]
		}
		if i < len(b.OrderBy) {
			kb = &b.OrderBy[i]
		}
		if ka != nil && kb != nil && ka.String() == kb.String() {
			continue
		}
		if ka != nil {
			addCols(a, ka.Expr)
		}
		if kb != nil {
			addCols(b, kb.Expr)
		}
	}
	return diff
}
