package eqcequiv

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"unmasque/internal/sqldb"
	"unmasque/internal/sqlparser"
	"unmasque/internal/workloads/tpch"
	"unmasque/internal/xdata"
)

// testSchemas: one standalone table and one parent/child pair.
func testSchemas() []sqldb.TableSchema {
	return []sqldb.TableSchema{
		{
			Name: "t",
			Columns: []sqldb.Column{
				{Name: "id", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 20},
				{Name: "a", Type: sqldb.TInt, MinInt: 0, MaxInt: 1000},
				{Name: "b", Type: sqldb.TInt, MinInt: 0, MaxInt: 1000},
				{Name: "price", Type: sqldb.TFloat, Precision: 2, MinInt: 0, MaxInt: 1000},
				{Name: "name", Type: sqldb.TText, MaxLen: 20},
			},
			PrimaryKey: []string{"id"},
		},
		{
			Name: "u",
			Columns: []sqldb.Column{
				{Name: "uid", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 20},
				{Name: "t_id", Type: sqldb.TInt, MinInt: 1, MaxInt: 1 << 20},
				{Name: "v", Type: sqldb.TInt, MinInt: 0, MaxInt: 1000},
			},
			PrimaryKey:  []string{"uid"},
			ForeignKeys: []sqldb.ForeignKey{{Column: "t_id", RefTable: "t", RefColumn: "id"}},
		},
	}
}

func parse(t *testing.T, src string) *sqldb.SelectStmt {
	t.Helper()
	stmt, err := sqlparser.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return stmt
}

func TestEquivalentRewrites(t *testing.T) {
	cases := []struct {
		name  string
		a, b  string
		proof string // expected proof kind, "" for any
	}{
		{
			name:  "conjunct order",
			a:     "select a from t where a >= 1 and b <= 5",
			b:     "select a from t where b <= 5 and a >= 1",
			proof: "canonical",
		},
		{
			name:  "between vs range",
			a:     "select a from t where a between 1 and 5",
			b:     "select a from t where a >= 1 and a <= 5",
			proof: "canonical",
		},
		{
			name:  "literal side",
			a:     "select a from t where 5 >= a",
			b:     "select a from t where a <= 5",
			proof: "canonical",
		},
		{
			name:  "strict vs inclusive int",
			a:     "select a from t where a > 5",
			b:     "select a from t where a >= 6",
			proof: "canonical",
		},
		{
			// between 5 and 5 collapses to equality; the separately
			// written range keeps two conjuncts, so the proof falls
			// through to enumeration.
			name:  "degenerate between",
			a:     "select a from t where a between 5 and 5",
			b:     "select a from t where a >= 5 and a <= 5",
			proof: "enumeration",
		},
		{
			name:  "join order",
			a:     "select t.a from t, u where t.id = u.t_id and u.v >= 3",
			b:     "select t.a from u, t where u.t_id = t.id and v >= 3",
			proof: "canonical",
		},
		{
			name:  "redundant conjunct",
			a:     "select a from t where a >= 5",
			b:     "select a from t where a >= 5 and a >= 3",
			proof: "enumeration",
		},
		{
			name:  "disjunct order",
			a:     "select a from t where a between 1 and 3 or a between 7 and 9",
			b:     "select a from t where a between 7 and 9 or a between 1 and 3",
			proof: "canonical",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v, err := Check(parse(t, tc.a), parse(t, tc.b), testSchemas(), Options{})
			if err != nil {
				t.Fatal(err)
			}
			if v.Outcome != Equivalent {
				t.Fatalf("outcome = %v, want equivalent (%s)", v.Outcome, v)
			}
			if tc.proof != "" && v.Proof != tc.proof {
				t.Errorf("proof = %q, want %q", v.Proof, tc.proof)
			}
			if v.Bound != DefaultBound {
				t.Errorf("bound = %d, want %d", v.Bound, DefaultBound)
			}
		})
	}
}

func TestInequivalentPairs(t *testing.T) {
	cases := []struct {
		name      string
		a, b      string
		orderOnly bool
	}{
		{name: "shifted bound", a: "select a from t where a >= 1", b: "select a from t where a >= 2"},
		{name: "agg swap", a: "select sum(a) from t", b: "select count(a) from t"},
		{name: "group drop", a: "select count(*) from t group by a", b: "select count(*) from t"},
		{name: "limit", a: "select a from t order by a limit 1", b: "select a from t order by a limit 2"},
		{name: "text eq", a: "select a from t where name = 'x'", b: "select a from t where name = 'y'"},
		{name: "like", a: "select a from t where name like 'ab%'", b: "select a from t where name like 'xb%'"},
		{name: "join filter", a: "select t.a from t, u where t.id = u.t_id and v >= 1", b: "select t.a from t, u where t.id = u.t_id and v >= 2"},
		{name: "order flip", a: "select a from t order by a", b: "select a from t order by a desc", orderOnly: true},
		{name: "having bound", a: "select a, sum(b) from t group by a having sum(b) >= 100", b: "select a, sum(b) from t group by a having sum(b) >= 101"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v, err := Check(parse(t, tc.a), parse(t, tc.b), testSchemas(), Options{})
			if err != nil {
				t.Fatal(err)
			}
			if v.Outcome != Inequivalent {
				t.Fatalf("outcome = %v, want inequivalent (%s)", v.Outcome, v)
			}
			ce := v.Counterexample
			if ce == nil || ce.DB == nil {
				t.Fatal("no counterexample")
			}
			if ce.DigestA == ce.DigestB {
				t.Error("counterexample digests agree")
			}
			if ce.OrderOnly != tc.orderOnly {
				t.Errorf("orderOnly = %v, want %v", ce.OrderOnly, tc.orderOnly)
			}
			if ce.DB.TotalRows() == 0 && !strings.Contains(tc.name, "limit") {
				// Most classes need at least one row to show a difference.
				t.Error("empty counterexample database")
			}
		})
	}
}

// TestCounterexampleRoundTrip replants the counterexample database and
// confirms the two queries really disagree on it.
func TestCounterexampleRoundTrip(t *testing.T) {
	a := parse(t, "select a from t where a >= 1")
	b := parse(t, "select a from t where a >= 2")
	v, err := Check(a, b, testSchemas(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v.Outcome != Inequivalent {
		t.Fatalf("outcome = %v, want inequivalent", v.Outcome)
	}
	db := v.Counterexample.DB
	ra, err := db.Execute(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := db.Execute(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	if normalize(ra).EqualUnordered(normalize(rb)) {
		t.Fatal("queries agree on the replanted counterexample")
	}
	if anonDigest(normalize(ra), false) != v.Counterexample.DigestA {
		t.Error("DigestA does not reproduce")
	}
	if anonDigest(normalize(rb), false) != v.Counterexample.DigestB {
		t.Error("DigestB does not reproduce")
	}
}

func TestSelfEquivalenceTPCH(t *testing.T) {
	schemas := tpch.Schemas()
	all := map[string]string{}
	for n, q := range tpch.HiddenQueries() {
		all[n] = q
	}
	for n, q := range tpch.HavingQueries() {
		all["having-"+n] = q
	}
	for name, src := range all {
		stmt := parse(t, src)
		v, err := Check(stmt, stmt, schemas, Options{Bound: 2})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if v.Outcome != Equivalent || v.Proof != "canonical" {
			t.Errorf("%s: %s, want canonical equivalence", name, v)
		}
	}
}

// TestMutantCatalogueKillRate checks the acceptance bar: at least 90%
// of the XData mutant catalogue over the TPC-H corpus is disproved
// with a concrete counterexample database.
func TestMutantCatalogueKillRate(t *testing.T) {
	schemas := tpch.Schemas()
	total, killed := 0, 0
	for _, name := range tpch.QueryOrder() {
		stmt := parse(t, tpch.HiddenQueries()[name])
		for _, m := range xdata.Mutants(stmt, schemas) {
			v, err := Check(stmt, m.Stmt, schemas, Options{Bound: 2, MaxInstances: 50000})
			if err != nil {
				t.Fatalf("%s/%s: %v", name, m.Label, err)
			}
			total++
			switch v.Outcome {
			case Inequivalent:
				killed++
				ce := v.Counterexample
				if ce.DB == nil || ce.DigestA == ce.DigestB {
					t.Errorf("%s/%s: malformed counterexample", name, m.Label)
				}
			case Equivalent:
				t.Logf("%s/%s: proven equivalent (%s)", name, m.Label, v.Proof)
			default:
				t.Logf("%s/%s: exhausted after %d instances", name, m.Label, v.Instances)
			}
		}
	}
	if total == 0 {
		t.Fatal("no mutants generated")
	}
	rate := float64(killed) / float64(total)
	t.Logf("killed %d/%d mutants (%.1f%%)", killed, total, 100*rate)
	if rate < 0.90 {
		t.Errorf("kill rate %.1f%% below the 90%% bar", 100*rate)
	}
}

// TestDeterminism: same pair, same options — byte-identical verdicts.
func TestDeterminism(t *testing.T) {
	run := func() *Verdict {
		v, err := Check(
			parse(t, "select a, b from t where a >= 1 and b <= 7"),
			parse(t, "select a, b from t where a >= 1 and b <= 6"),
			testSchemas(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	v1, v2 := run(), run()
	if v1.Outcome != v2.Outcome || v1.Instances != v2.Instances || v1.Bound != v2.Bound {
		t.Fatalf("verdicts differ: %s vs %s", v1, v2)
	}
	if v1.Outcome != Inequivalent {
		t.Fatalf("outcome = %v, want inequivalent", v1.Outcome)
	}
	c1, c2 := v1.Counterexample, v2.Counterexample
	if c1.DigestA != c2.DigestA || c1.DigestB != c2.DigestB {
		t.Error("counterexample digests differ between runs")
	}
	if c1.DB.Fingerprint() != c2.DB.Fingerprint() {
		t.Error("counterexample databases differ between runs")
	}
}

func TestExhausted(t *testing.T) {
	v, err := Check(
		parse(t, "select a from t where a >= 5"),
		parse(t, "select a from t where a >= 5 and a >= 3"),
		testSchemas(), Options{MaxInstances: 1})
	if err != nil {
		t.Fatal(err)
	}
	if v.Outcome != Exhausted {
		t.Fatalf("outcome = %v, want exhausted (%s)", v.Outcome, v)
	}
	if v.Instances != 1 {
		t.Errorf("instances = %d, want 1", v.Instances)
	}
}

// TestDomainCapNeverProves pins the other half of the Exhausted
// contract: a truncated *value domain* (MaxColumnValues), not just a
// truncated instance budget, must forfeit the proof. The pair is
// genuinely equivalent and the enumeration finds no counterexample,
// but with the diff column's boundary values capped below their count
// the dropped values could have separated the queries — so Equivalent
// would be unsound, and the verdict must degrade to Exhausted.
func TestDomainCapNeverProves(t *testing.T) {
	v, err := Check(
		parse(t, "select a from t where a >= 5"),
		parse(t, "select a from t where a >= 5 and a >= 3"),
		testSchemas(), Options{MaxColumnValues: 2})
	if err != nil {
		t.Fatal(err)
	}
	if v.Outcome != Exhausted {
		t.Fatalf("outcome = %v, want exhausted under a capped domain (%s)", v.Outcome, v)
	}
}

// TestSmallScopeCaveat pins the documented soundness limit (DESIGN.md
// §10.2): "price > 0.05" and "price >= 0.06" differ on real numbers
// (0.055 separates them) but are proven Equivalent by enumeration —
// the strictness widening is integral-only, so the pair is not
// canonically equal, and no value in either predicate's boundary
// domain (precision-2 neighbours of the constants) falls strictly
// between the bounds. Equivalence claims hold only up to the bound
// and the interesting-value abstraction.
func TestSmallScopeCaveat(t *testing.T) {
	v, err := Check(
		parse(t, "select a from t where price > 0.05"),
		parse(t, "select a from t where price >= 0.06"),
		testSchemas(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v.Outcome != Equivalent {
		t.Fatalf("outcome = %v, want equivalent (%s)", v.Outcome, v)
	}
	if v.Proof != "enumeration" {
		t.Errorf("proof = %q, want %q (a canonical proof would mean the pair was rewritten alike, not enumerated)", v.Proof, "enumeration")
	}
}

func TestCheckErrors(t *testing.T) {
	schemas := testSchemas()
	if _, err := Check(parse(t, "select a from missing"), parse(t, "select a from t"), schemas, Options{}); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := Check(parse(t, "select nosuch from t"), parse(t, "select a from t"), schemas, Options{}); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestOutcomeAndVerdictStrings(t *testing.T) {
	for o, want := range map[Outcome]string{Equivalent: "equivalent", Inequivalent: "inequivalent", Exhausted: "exhausted", Outcome(99): "?outcome?"} {
		if o.String() != want {
			t.Errorf("Outcome(%d) = %q, want %q", int(o), o.String(), want)
		}
	}
	for _, v := range []*Verdict{
		{Outcome: Equivalent, Bound: 2, Proof: "canonical"},
		{Outcome: Inequivalent, Counterexample: &Counterexample{DB: sqldb.NewDatabase()}},
		{Outcome: Exhausted, Instances: 7},
	} {
		if v.String() == "" {
			t.Error("empty verdict string")
		}
	}
	if fmt.Sprint(Equivalent) != "equivalent" {
		t.Error("outcome does not print via fmt")
	}
}
