package eqcequiv

import (
	"fmt"
	"sort"
	"strings"

	"unmasque/internal/sqldb"
	"unmasque/internal/xdata"
)

// The instance enumerator materializes every canonical database of up
// to k rows per table over the "interesting" value domains derived
// from the two queries' constraint analyses. Canonical means: row
// multisets are generated in one fixed order (no permutations of the
// same multiset), primary keys are unique, and foreign keys reference
// rows that exist — databases violating the schema's integrity
// constraints are never visited, and neither are two databases that
// differ only by row order.

// maxTemplatesPerTable caps the per-table row-template space. When the
// cartesian product of column domains exceeds it, the tail is dropped
// and the enumeration can no longer prove equivalence (only find
// counterexamples), which the checker reports as Exhausted.
const maxTemplatesPerTable = 512

type fkEdge struct {
	colIdx    int // column index in the child table
	parentTab int // index into enumerator.tables
	parentCol int // column index in the parent table
}

type tableEnum struct {
	schema    sqldb.TableSchema
	templates [][]sqldb.Value
	pk        []int // column indexes of the primary key
	fks       []fkEdge

	// required marks tables in BOTH queries' from clauses. An
	// instance leaving such a table empty makes both inner-join
	// queries unpopulated — they trivially agree — so the enumeration
	// prunes the whole subtree without evaluating anything.
	required bool
}

type enumerator struct {
	tables []tableEnum // foreign-key topological order: parents first
	bound  int
	capped bool // template space truncated: proofs impossible
}

// colDomain classifies a column and returns its value domain. hints
// carries extra must-include values (aggregate boundaries from having
// clauses) that the predicate analysis alone cannot see. capped
// reports that the domain was truncated to maxVals — interesting
// values were dropped, so an enumeration over it can still find
// counterexamples but can no longer prove equivalence.
func colDomain(ref sqldb.ColRef, def sqldb.Column, analyses []*xdata.Analysis, diff map[sqldb.ColRef]bool, hints []sqldb.Value, isKey bool, bound, maxVals int) (vals []sqldb.Value, capped bool, err error) {
	covering := func() []*xdata.Analysis {
		var out []*xdata.Analysis
		for _, a := range analyses {
			if _, ok := a.Schemas[ref.Table]; ok {
				out = append(out, a)
			}
		}
		return out
	}()
	if len(covering) == 0 {
		return nil, false, fmt.Errorf("eqcequiv: table %s not analyzed", ref.Table)
	}
	isJoin := false
	for _, a := range covering {
		for _, jc := range a.JoinCols() {
			if jc == ref {
				isJoin = true
			}
		}
	}
	if isJoin || isKey {
		vals = append(vals, keyDomain(def, bound)...)
	}
	switch {
	case diff[ref]:
		vals = append(vals, hints...)
		for _, a := range covering {
			bv, err := a.BoundaryValues(ref)
			if err != nil {
				return nil, false, err
			}
			vals = append(vals, bv...)
		}
		vals = dedupeValues(vals)
		if len(vals) > maxVals {
			vals = vals[:maxVals]
			capped = true
		}
	case isJoin || isKey:
		// Key domain only: enough rows to join and to violate nothing.
	default:
		v, err := covering[0].SatisfyingValue(ref, 0)
		if err != nil {
			return nil, false, err
		}
		vals = append(vals, v)
	}
	return dedupeValues(vals), capped, nil
}

// keyDomain yields bound distinct typed key values; joined columns on
// both sides of an equi-join draw from this same pool, so matching
// rows exist in the enumeration.
func keyDomain(def sqldb.Column, bound int) []sqldb.Value {
	out := make([]sqldb.Value, 0, bound)
	for i := 1; i <= bound; i++ {
		switch def.Type {
		case sqldb.TText:
			out = append(out, sqldb.NewText(fmt.Sprintf("k%d", i)))
		case sqldb.TFloat:
			out = append(out, sqldb.NewFloat(float64(i)))
		case sqldb.TDate:
			out = append(out, sqldb.NewDate(int64(i)))
		case sqldb.TBool:
			if i <= 2 {
				out = append(out, sqldb.NewBool(i == 1))
			}
		default:
			out = append(out, sqldb.NewInt(int64(i)))
		}
	}
	return out
}

// dedupeValues removes duplicates preserving first-seen order.
func dedupeValues(vals []sqldb.Value) []sqldb.Value {
	seen := map[string]bool{}
	out := vals[:0]
	for _, v := range vals {
		k := v.GroupKey()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, v)
	}
	return out
}

// buildEnumerator derives the per-table template spaces for the union
// of both queries' from clauses.
func buildEnumerator(analyses []*xdata.Analysis, schemas []sqldb.TableSchema, diff map[sqldb.ColRef]bool, hints map[sqldb.ColRef][]sqldb.Value, opt Options) (*enumerator, error) {
	byName := map[string]sqldb.TableSchema{}
	for _, s := range schemas {
		byName[strings.ToLower(s.Name)] = s
	}
	nameSet := map[string]bool{}
	seenIn := map[string]int{}
	for _, a := range analyses {
		inThis := map[string]bool{}
		for _, t := range a.Tables {
			nameSet[t] = true
			if !inThis[t] {
				inThis[t] = true
				seenIn[t]++
			}
		}
	}
	names := make([]string, 0, len(nameSet))
	for n := range nameSet {
		names = append(names, n)
	}
	sort.Strings(names)
	names = fkTopoOrder(names, byName)

	e := &enumerator{bound: opt.Bound}
	idxOf := map[string]int{}
	for i, n := range names {
		idxOf[n] = i
	}
	for _, n := range names {
		sch := byName[n]
		te := tableEnum{schema: sch, required: seenIn[n] == len(analyses)}
		for _, pk := range sch.PrimaryKey {
			if i := sch.ColumnIndex(pk); i >= 0 {
				te.pk = append(te.pk, i)
			}
		}
		for _, fk := range sch.ForeignKeys {
			pi, ok := idxOf[strings.ToLower(fk.RefTable)]
			if !ok {
				continue // parent not enumerated: constraint vacuous here
			}
			ci := sch.ColumnIndex(fk.Column)
			pc := byName[strings.ToLower(fk.RefTable)].ColumnIndex(fk.RefColumn)
			if ci >= 0 && pc >= 0 {
				te.fks = append(te.fks, fkEdge{colIdx: ci, parentTab: pi, parentCol: pc})
			}
		}
		isKey := map[string]bool{}
		for _, pk := range sch.PrimaryKey {
			isKey[strings.ToLower(pk)] = true
		}
		for _, fk := range sch.ForeignKeys {
			isKey[strings.ToLower(fk.Column)] = true
		}
		domains := make([][]sqldb.Value, len(sch.Columns))
		for i, col := range sch.Columns {
			ref := sqldb.ColRef{Table: n, Column: strings.ToLower(col.Name)}
			d, capped, err := colDomain(ref, col, analyses, diff, hints[ref], isKey[strings.ToLower(col.Name)], opt.Bound, opt.MaxColumnValues)
			if err != nil {
				return nil, err
			}
			if capped {
				e.capped = true
			}
			if len(d) == 0 {
				return nil, fmt.Errorf("eqcequiv: empty domain for %s.%s", n, col.Name)
			}
			domains[i] = d
		}
		te.templates = cartesian(domains, maxTemplatesPerTable)
		if full := product(domains); full > maxTemplatesPerTable {
			e.capped = true
		}
		e.tables = append(e.tables, te)
	}
	return e, nil
}

func product(domains [][]sqldb.Value) int {
	p := 1
	for _, d := range domains {
		p *= len(d)
		if p > maxTemplatesPerTable {
			return p
		}
	}
	return p
}

// cartesian expands column domains into row templates, lexicographic
// in domain index order, truncated at limit.
func cartesian(domains [][]sqldb.Value, limit int) [][]sqldb.Value {
	idx := make([]int, len(domains))
	var out [][]sqldb.Value
	for {
		row := make([]sqldb.Value, len(domains))
		for i, d := range domains {
			row[i] = d[idx[i]]
		}
		out = append(out, row)
		if len(out) >= limit {
			return out
		}
		// Odometer increment, last column fastest.
		i := len(domains) - 1
		for i >= 0 {
			idx[i]++
			if idx[i] < len(domains[i]) {
				break
			}
			idx[i] = 0
			i--
		}
		if i < 0 {
			return out
		}
	}
}

// fkTopoOrder sorts table names parents-first along foreign-key
// edges (deterministic Kahn's algorithm; name order breaks ties).
// Cycles fall back to name order for the remainder.
func fkTopoOrder(names []string, byName map[string]sqldb.TableSchema) []string {
	inSet := map[string]bool{}
	for _, n := range names {
		inSet[n] = true
	}
	// children[p] = tables with an FK into p.
	deps := map[string]map[string]bool{} // child -> parents pending
	for _, n := range names {
		deps[n] = map[string]bool{}
		for _, fk := range byName[n].ForeignKeys {
			p := strings.ToLower(fk.RefTable)
			if inSet[p] && p != n {
				deps[n][p] = true
			}
		}
	}
	var out []string
	done := map[string]bool{}
	for len(out) < len(names) {
		progressed := false
		for _, n := range names {
			if done[n] {
				continue
			}
			ready := true
			for p := range deps[n] {
				if !done[p] {
					ready = false
					break
				}
			}
			if ready {
				out = append(out, n)
				done[n] = true
				progressed = true
			}
		}
		if !progressed {
			for _, n := range names {
				if !done[n] {
					out = append(out, n)
					done[n] = true
				}
			}
		}
	}
	return out
}

// instance is one enumerated database: per-table multisets of
// template indexes.
type instance struct {
	rows [][]int // rows[t] = chosen template indexes for table t
}

// enumerate visits canonical instances in ascending total-row order,
// calling visit for each; visit returns stop to end the walk early
// (counterexample found) and charges one unit of budget per call.
// The return reports whether the walk covered the full bounded space
// (false when stopped early, the budget ran out, or templates were
// capped).
func (e *enumerator) enumerate(budget int, visit func(db *sqldb.Database) (bool, error)) (complete bool, visited int, err error) {
	maxTotal := e.bound * len(e.tables)
	chosen := make([][]int, len(e.tables))
	stopped := false
	for total := 0; total <= maxTotal && !stopped; total++ {
		stop, err := e.compose(0, total, chosen, &budget, &visited, visit)
		if err != nil {
			return false, visited, err
		}
		if stop {
			stopped = true
		}
	}
	return !stopped && !e.capped, visited, nil
}

// compose distributes `remaining` rows over tables[t:], then visits.
func (e *enumerator) compose(t, remaining int, chosen [][]int, budget, visited *int, visit func(db *sqldb.Database) (bool, error)) (bool, error) {
	if t == len(e.tables) {
		if *budget <= 0 {
			return true, nil
		}
		*budget--
		*visited++
		return visit(e.materialize(chosen))
	}
	rest := e.bound * (len(e.tables) - t - 1)
	lo := remaining - rest
	if lo < 0 {
		lo = 0
	}
	if e.tables[t].required && lo < 1 {
		lo = 1
	}
	hi := remaining
	if hi > e.bound {
		hi = e.bound
	}
	allowed := e.allowedTemplates(t, chosen)
	for s := lo; s <= hi; s++ {
		if len(allowed) == 0 && s > 0 {
			continue
		}
		stop, err := e.chooseMultiset(t, allowed, s, 0, nil, chosen, func() (bool, error) {
			return e.compose(t+1, remaining-s, chosen, budget, visited, visit)
		})
		if err != nil || stop {
			return stop, err
		}
	}
	return false, nil
}

// allowedTemplates filters table t's templates to those whose foreign
// keys reference rows already chosen for parent tables (parents come
// earlier in topo order).
func (e *enumerator) allowedTemplates(t int, chosen [][]int) []int {
	te := e.tables[t]
	var out []int
	for i, tpl := range te.templates {
		ok := true
		for _, fk := range te.fks {
			if fk.parentTab >= t {
				continue // forward or self edge: not enforceable here
			}
			found := false
			for _, pi := range chosen[fk.parentTab] {
				pv := e.tables[fk.parentTab].templates[pi][fk.parentCol]
				if tpl[fk.colIdx].GroupKey() == pv.GroupKey() {
					found = true
					break
				}
			}
			if !found {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, i)
		}
	}
	return out
}

// chooseMultiset picks s templates for table t as a non-decreasing
// index sequence over allowed (strictly increasing when a primary key
// forbids repeated rows), rejecting primary-key collisions, then
// calls then().
func (e *enumerator) chooseMultiset(t int, allowed []int, s, startPos int, pkSeen []string, chosen [][]int, then func() (bool, error)) (bool, error) {
	if s == 0 {
		return then()
	}
	te := e.tables[t]
	for pos := startPos; pos < len(allowed); pos++ {
		idx := allowed[pos]
		var pkKey string
		if len(te.pk) > 0 {
			parts := make([]string, len(te.pk))
			for i, ci := range te.pk {
				parts[i] = te.templates[idx][ci].GroupKey()
			}
			pkKey = strings.Join(parts, "|")
			dup := false
			for _, k := range pkSeen {
				if k == pkKey {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
		}
		next := pos
		if len(te.pk) > 0 {
			next = pos + 1 // repetition would always collide on the key
		}
		chosen[t] = append(chosen[t], idx)
		seen := pkSeen
		if len(te.pk) > 0 {
			seen = append(seen, pkKey)
		}
		stop, err := e.chooseMultiset(t, allowed, s-1, next, seen, chosen, then)
		chosen[t] = chosen[t][:len(chosen[t])-1]
		if err != nil || stop {
			return stop, err
		}
	}
	return false, nil
}

// materialize builds the chosen instance as a database.
func (e *enumerator) materialize(chosen [][]int) *sqldb.Database {
	db := sqldb.NewDatabase()
	for t, te := range e.tables {
		// CreateTable cannot fail here: schemas are distinct by name.
		_ = db.CreateTable(te.schema)
		for _, idx := range chosen[t] {
			_ = db.Insert(te.schema.Name, te.templates[idx]...)
		}
	}
	return db
}
