package eqcverify_test

import (
	"strings"
	"testing"

	"unmasque/internal/analysis/eqcverify"
	"unmasque/internal/sqlparser"
	"unmasque/internal/workloads/tpch"
)

// verify parses sql against the TPC-H schema and runs the verifier.
func verify(t *testing.T, sql string, opt eqcverify.Options) []eqcverify.Diagnostic {
	t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	return eqcverify.Verify(stmt, tpch.Schemas(), opt)
}

// wantClean asserts the query is in-class.
func wantClean(t *testing.T, sql string, opt eqcverify.Options) {
	t.Helper()
	if diags := verify(t, sql, opt); len(diags) != 0 {
		t.Errorf("expected in-class, got diagnostics:\n%q\n%v", sql, diags)
	}
}

// wantRule asserts at least one diagnostic with the given rule ID and
// no diagnostics with other IDs (each fixture isolates one violation).
func wantRule(t *testing.T, sql, rule string, opt eqcverify.Options) {
	t.Helper()
	diags := verify(t, sql, opt)
	if len(diags) == 0 {
		t.Fatalf("expected %s, got no diagnostics:\n%q", rule, sql)
	}
	for _, d := range diags {
		if d.Rule != rule {
			t.Errorf("expected only %s, got %v:\n%q", rule, diags, sql)
			return
		}
	}
}

func TestInClassQueries(t *testing.T) {
	for name, sql := range map[string]string{
		"filter": `select l_orderkey, l_quantity from lineitem
			where l_quantity <= 24 and l_shipdate between date '1994-01-01' and date '1994-12-31'`,
		"join": `select c_name, o_orderdate from customer, orders
			where c_custkey = o_custkey and o_totalprice > 100`,
		"three-way": `select c_name, l_extendedprice from customer, orders, lineitem
			where c_custkey = o_custkey and o_orderkey = l_orderkey`,
		"fk-fk": `select ps_availqty from partsupp, lineitem
			where ps_partkey = l_partkey and ps_suppkey = l_suppkey`,
		"aggregate": `select l_returnflag, sum(l_quantity), count(*) from lineitem
			group by l_returnflag having sum(l_extendedprice) > 100`,
		"multilinear": `select sum(l_extendedprice * (1 - l_discount)) from lineitem
			where l_shipdate <= date '1998-09-02' group by l_returnflag`,
		"orderlimit": `select c_name, c_acctbal from customer
			where c_acctbal >= 0 order by c_acctbal desc, c_name limit 10`,
		"order-by-alias": `select l_returnflag, sum(l_quantity) as sum_qty from lineitem
			group by l_returnflag order by sum_qty desc`,
		"like": `select p_partkey from part where p_name like '%green%'`,
	} {
		t.Run(name, func(t *testing.T) { wantClean(t, sql, eqcverify.Options{}) })
	}
}

func TestDisjunctionOption(t *testing.T) {
	sql := `select l_orderkey from lineitem
		where l_shipmode = 'AIR' or l_shipmode = 'RAIL'`
	// Single-column disjunctions are legal exactly when the extension
	// is enabled.
	wantClean(t, sql, eqcverify.Options{AllowDisjunction: true})
	wantRule(t, sql, eqcverify.RuleFilterConj, eqcverify.Options{})

	ranges := `select l_orderkey from lineitem
		where l_quantity between 1 and 10 or l_quantity between 20 and 30`
	wantClean(t, ranges, eqcverify.Options{AllowDisjunction: true})

	// Even with the extension, cross-column disjunction stays illegal.
	cross := `select l_orderkey from lineitem
		where l_quantity = 1 or l_discount = 0.05`
	wantRule(t, cross, eqcverify.RuleFilterConj, eqcverify.Options{AllowDisjunction: true})
}

// TestRuleCatalogue seeds exactly one violation per rule ID and
// asserts the verifier reports it by that ID.
func TestRuleCatalogue(t *testing.T) {
	opt := eqcverify.Options{}
	cases := []struct {
		rule string
		sql  string
	}{
		{eqcverify.RuleUnknownTable, `select 1 from warehouse`},
		{eqcverify.RuleUnknownColumn, `select l_colour from lineitem`},
		{eqcverify.RuleJoinEdge, `select 1 from lineitem, orders
			where l_quantity = o_totalprice`},
		{eqcverify.RuleJoinConnected, `select 1 from customer, lineitem
			where c_acctbal > 0 and l_quantity > 0`},
		{eqcverify.RuleFilterConj, `select 1 from lineitem
			where l_quantity = 1 or l_discount = 0.05`},
		{eqcverify.RuleFilterKey, `select 1 from lineitem where l_orderkey = 5`},
		{eqcverify.RuleFilterOp, `select 1 from customer where c_name < 'M'`},
		{eqcverify.RuleFilterForm, `select 1 from lineitem where l_quantity = l_tax`},
		{eqcverify.RuleProjLinear, `select l_quantity * l_quantity from lineitem`},
		{eqcverify.RuleProjAgg, `select sum(l_quantity) + 1 from lineitem`},
		{eqcverify.RuleProjGrouping, `select l_returnflag, sum(l_quantity) from lineitem
			group by l_linestatus`},
		{eqcverify.RuleGroupByForm, `select sum(l_quantity) from lineitem
			group by l_quantity + 1`},
		{eqcverify.RuleHavingForm, `select sum(l_quantity) from lineitem
			group by l_returnflag having l_quantity > 5`},
		{eqcverify.RuleHavingGrouped, `select sum(l_extendedprice) from lineitem
			group by l_quantity having sum(l_quantity) > 5`},
		{eqcverify.RuleHavingOverlap, `select sum(l_extendedprice) from lineitem
			where l_extendedprice > 100
			group by l_returnflag having sum(l_extendedprice) > 1000`},
		{eqcverify.RuleOrderProj, `select l_orderkey from lineitem order by l_shipdate`},
		{eqcverify.RuleLimitMin, `select l_orderkey from lineitem limit 2`},
	}
	seen := map[string]bool{}
	for _, c := range cases {
		seen[c.rule] = true
		t.Run(c.rule, func(t *testing.T) { wantRule(t, c.sql, c.rule, opt) })
	}
	// <> is also an operator violation, via a distinct code path.
	t.Run("EQC-W03-ne", func(t *testing.T) {
		wantRule(t, `select 1 from lineitem where l_quantity <> 5`, eqcverify.RuleFilterOp, opt)
	})
}

func TestDiagnosticRendering(t *testing.T) {
	diags := verify(t, `select l_orderkey from lineitem limit 2`, eqcverify.Options{})
	if len(diags) != 1 {
		t.Fatalf("want 1 diagnostic, got %v", diags)
	}
	d := diags[0]
	if d.Rule != eqcverify.RuleLimitMin || d.Clause != "limit" || d.Span != "limit 2" {
		t.Errorf("unexpected diagnostic fields: %+v", d)
	}
	err := eqcverify.Error(diags)
	if err == nil || !strings.Contains(err.Error(), "EQC-L01") {
		t.Errorf("Error() should mention the rule ID, got %v", err)
	}
	if eqcverify.Error(nil) != nil {
		t.Errorf("Error(nil) should be nil")
	}
}

// TestMultipleViolations checks diagnostics accumulate rather than
// stopping at the first failure.
func TestMultipleViolations(t *testing.T) {
	diags := verify(t, `select l_orderkey from lineitem
		where l_orderkey = 5 order by l_shipdate limit 2`, eqcverify.Options{})
	rules := map[string]bool{}
	for _, d := range diags {
		rules[d.Rule] = true
	}
	for _, want := range []string{
		eqcverify.RuleFilterKey, eqcverify.RuleOrderProj, eqcverify.RuleLimitMin,
	} {
		if !rules[want] {
			t.Errorf("missing %s in %v", want, diags)
		}
	}
}
