// Package eqcverify statically verifies that a single-block query —
// parsed from text or assembled by the extraction pipeline — lies
// inside the paper's Extractable Query Class (EQC). The extractor's
// correctness guarantee is only meaningful for in-class queries, yet
// nothing else in the system checks class membership of an extraction
// result: an extractor bug could emit an out-of-class query whose
// result happens to match on the test instance. This package is the
// mechanical oracle closing that gap; core.Extract runs it as an
// opt-in post-extraction guard (Config.VerifyEQC) and the extraction
// suites enable it unconditionally.
//
// The invariants checked, with their stable rule IDs (catalogued in
// DESIGN.md §6):
//
//   - EQC-T01/EQC-C01: tables and columns exist in the schema.
//   - EQC-J01: every equi-join predicate lies on a declared PK–FK or
//     implied FK–FK edge of the schema graph.
//   - EQC-J02: the join predicates connect all FROM tables (no cross
//     products).
//   - EQC-W01..W04: the WHERE residue is a conjunction of atomic
//     filter predicates on non-key columns, with operators legal for
//     the column type; disjunctive single-column predicates are
//     admitted only under Options.AllowDisjunction (the Section 9
//     extension).
//   - EQC-P01..P03: projections are multi-linear functions of base
//     columns, aggregates are outermost and never nested, and in an
//     aggregated query every plain output depends only on grouping
//     columns.
//   - EQC-G01: GROUP BY entries are plain columns.
//   - EQC-H01..H03: HAVING is a conjunction of agg(column) cmp
//     literal atoms, on non-grouping columns, attribute-disjoint from
//     the filter predicates.
//   - EQC-O01: every ORDER BY key refers to a projected output.
//   - EQC-L01: an explicit LIMIT is at least 3 (the paper's
//     geometric limit probe needs |R| >= 3 to distinguish a limit
//     from a small result).
package eqcverify

import (
	"fmt"
	"strings"

	"unmasque/internal/sqldb"
)

// Rule IDs. These are stable identifiers: tests, the lint driver and
// DESIGN.md refer to them by value, so they must not be renumbered.
const (
	RuleUnknownTable  = "EQC-T01" // FROM references a table absent from the schema
	RuleUnknownColumn = "EQC-C01" // column reference unresolvable or ambiguous
	RuleJoinEdge      = "EQC-J01" // equi-join not on a schema-graph key edge
	RuleJoinConnected = "EQC-J02" // join predicates leave the FROM tables disconnected
	RuleFilterConj    = "EQC-W01" // WHERE residue is not conjunctive (or illegal disjunction)
	RuleFilterKey     = "EQC-W02" // filter predicate on a key column
	RuleFilterOp      = "EQC-W03" // operator outside EQC for the column type
	RuleFilterForm    = "EQC-W04" // filter atom is not column-versus-literal
	RuleProjLinear    = "EQC-P01" // projection is not multi-linear in base columns
	RuleProjAgg       = "EQC-P02" // aggregate nested or not outermost
	RuleProjGrouping  = "EQC-P03" // plain output of an aggregated query off the grouping set
	RuleGroupByForm   = "EQC-G01" // GROUP BY entry is not a plain column
	RuleHavingForm    = "EQC-H01" // HAVING atom is not agg(column) cmp literal
	RuleHavingGrouped = "EQC-H02" // HAVING aggregates a grouping column
	RuleHavingOverlap = "EQC-H03" // HAVING and filter attribute sets intersect
	RuleOrderProj     = "EQC-O01" // ORDER BY key is not a projected output
	RuleLimitMin      = "EQC-L01" // LIMIT below 3
)

// Options tunes the verified class.
type Options struct {
	// AllowDisjunction admits the Section 9 extension: a WHERE
	// conjunct may be a disjunction of equality/range atoms over one
	// non-key column (the shape Config.ExtractDisjunction emits).
	AllowDisjunction bool
}

// Diagnostic is one EQC violation.
type Diagnostic struct {
	Rule   string // stable rule ID (EQC-…)
	Clause string // query clause: "from", "where", "select", "group by", "having", "order by", "limit"
	Span   string // SQL rendering of the offending construct
	Msg    string // human-readable explanation
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s [%s] %s: %s", d.Rule, d.Clause, d.Span, d.Msg)
}

// Error wraps a non-empty diagnostic list as a single error.
func Error(diags []Diagnostic) error {
	if len(diags) == 0 {
		return nil
	}
	parts := make([]string, len(diags))
	for i, d := range diags {
		parts[i] = d.String()
	}
	return fmt.Errorf("query outside the extractable class: %s", strings.Join(parts, "; "))
}

// Verify checks stmt against the EQC grammar over the given table
// schemas and returns every violation found (empty means in-class).
// The schemas may cover more tables than the statement references;
// the schema graph is derived with the same FK closure the extractor
// uses, so PK–FK and implied FK–FK joins are both admitted.
func Verify(stmt *sqldb.SelectStmt, schemas []sqldb.TableSchema, opt Options) []Diagnostic {
	v := &verifier{
		opt:     opt,
		stmt:    stmt,
		schemas: map[string]sqldb.TableSchema{},
	}
	for _, s := range schemas {
		v.schemas[strings.ToLower(s.Name)] = s
	}
	v.graph = map[string]bool{}
	for _, e := range sqldb.BuildSchemaGraph(schemas).Edges {
		v.graph[e.Canonical().String()] = true
	}
	v.run()
	return v.diags
}

type verifier struct {
	opt     Options
	stmt    *sqldb.SelectStmt
	schemas map[string]sqldb.TableSchema
	graph   map[string]bool // canonical SchemaEdge strings

	from      []string // resolved FROM tables (lowercased, known only)
	diags     []Diagnostic
	joinEdges []sqldb.SchemaEdge
	filterSet map[sqldb.ColRef]bool
	groupSet  map[sqldb.ColRef]bool
}

func (v *verifier) report(rule, clause string, span fmt.Stringer, format string, args ...any) {
	text := ""
	if span != nil {
		text = span.String()
	}
	v.diags = append(v.diags, Diagnostic{
		Rule:   rule,
		Clause: clause,
		Span:   text,
		Msg:    fmt.Sprintf(format, args...),
	})
}

type literalSpan string

func (s literalSpan) String() string { return string(s) }

func (v *verifier) run() {
	v.filterSet = map[sqldb.ColRef]bool{}
	v.groupSet = map[sqldb.ColRef]bool{}
	v.checkFrom()
	v.checkWhere()
	v.checkConnectivity()
	v.checkGroupBy() // before select: P03 needs the grouping set
	v.checkSelect()
	v.checkHaving()
	v.checkOrderBy()
	v.checkLimit()
}

// --- resolution -----------------------------------------------------

// resolve maps a column reference to its owning table, reporting
// EQC-C01 on failure. clause names the enclosing clause for the
// diagnostic.
func (v *verifier) resolve(c *sqldb.ColumnExpr, clause string) (sqldb.ColRef, bool) {
	tbl := strings.ToLower(c.Table)
	col := strings.ToLower(c.Column)
	if tbl != "" {
		s, ok := v.schemas[tbl]
		if !ok || !v.inFrom(tbl) {
			v.report(RuleUnknownColumn, clause, c, "table %s is not in the from clause", tbl)
			return sqldb.ColRef{}, false
		}
		if s.ColumnIndex(col) < 0 {
			v.report(RuleUnknownColumn, clause, c, "table %s has no column %s", tbl, col)
			return sqldb.ColRef{}, false
		}
		return sqldb.ColRef{Table: tbl, Column: col}, true
	}
	found := ""
	for _, t := range v.from {
		if v.schemas[t].ColumnIndex(col) >= 0 {
			if found != "" {
				v.report(RuleUnknownColumn, clause, c, "column %s is ambiguous (%s, %s)", col, found, t)
				return sqldb.ColRef{}, false
			}
			found = t
		}
	}
	if found == "" {
		v.report(RuleUnknownColumn, clause, c, "unknown column %s", col)
		return sqldb.ColRef{}, false
	}
	return sqldb.ColRef{Table: found, Column: col}, true
}

func (v *verifier) inFrom(table string) bool {
	for _, t := range v.from {
		if t == table {
			return true
		}
	}
	return false
}

// column returns the schema definition behind a resolved reference.
func (v *verifier) column(ref sqldb.ColRef) sqldb.Column {
	col, _ := v.schemas[ref.Table].Column(ref.Column)
	return col
}

func (v *verifier) isKey(ref sqldb.ColRef) bool {
	return v.schemas[ref.Table].IsKey(ref.Column)
}

// --- clause checks --------------------------------------------------

func (v *verifier) checkFrom() {
	for _, raw := range v.stmt.From {
		name := strings.ToLower(raw)
		if _, ok := v.schemas[name]; !ok {
			v.report(RuleUnknownTable, "from", literalSpan(name), "table %s does not exist in the schema", name)
			continue
		}
		v.from = append(v.from, name)
	}
}

func (v *verifier) checkWhere() {
	for _, conjunct := range sqldb.Conjuncts(v.stmt.Where) {
		if ref, ok := v.asJoinPredicate(conjunct); ok {
			edge := ref.Canonical()
			if !v.graph[edge.String()] {
				v.report(RuleJoinEdge, "where", conjunct,
					"equi-join is not on a declared PK-FK/FK-FK edge of the schema graph")
			}
			v.joinEdges = append(v.joinEdges, edge)
			continue
		}
		v.checkFilterAtom(conjunct)
	}
}

// asJoinPredicate recognizes col = col between two distinct tables.
func (v *verifier) asJoinPredicate(e sqldb.Expr) (sqldb.SchemaEdge, bool) {
	b, ok := e.(*sqldb.BinaryExpr)
	if !ok || b.Op != sqldb.OpEq {
		return sqldb.SchemaEdge{}, false
	}
	lc, lok := b.L.(*sqldb.ColumnExpr)
	rc, rok := b.R.(*sqldb.ColumnExpr)
	if !lok || !rok {
		return sqldb.SchemaEdge{}, false
	}
	lref, lok := v.resolve(lc, "where")
	rref, rok := v.resolve(rc, "where")
	if !lok || !rok {
		// Unresolvable columns were already reported; swallow the atom.
		return sqldb.SchemaEdge{}, true
	}
	if lref.Table == rref.Table {
		return sqldb.SchemaEdge{}, false
	}
	return sqldb.SchemaEdge{A: lref, B: rref}, true
}

// checkFilterAtom validates one non-join conjunct of WHERE.
func (v *verifier) checkFilterAtom(e sqldb.Expr) {
	switch x := e.(type) {
	case *sqldb.BinaryExpr:
		if x.Op == sqldb.OpOr {
			v.checkDisjunction(e)
			return
		}
		if x.Op == sqldb.OpAnd {
			// Conjuncts() flattened ANDs already; a nested AND can only
			// appear under OR/NOT and is handled there.
			for _, c := range sqldb.Conjuncts(x) {
				v.checkFilterAtom(c)
			}
			return
		}
		if x.Op == sqldb.OpNe {
			v.report(RuleFilterOp, "where", e, "operator <> is outside EQC")
			return
		}
		if !x.Op.IsComparison() {
			v.report(RuleFilterForm, "where", e, "filter predicate must be a comparison")
			return
		}
		col, lit := v.splitColLiteral(x.L, x.R)
		if col == nil {
			v.report(RuleFilterForm, "where", e, "filter must compare a column with a literal")
			return
		}
		ref, ok := v.resolve(col, "where")
		if !ok {
			return
		}
		if lit == nil {
			v.report(RuleFilterForm, "where", e,
				"filter on %s must compare against a literal", ref)
			return
		}
		v.recordFilter(ref, e)
		v.checkFilterOperator(ref, x.Op, e)
	case *sqldb.BetweenExpr:
		col, ok := x.X.(*sqldb.ColumnExpr)
		if !ok || !isLiteral(x.Lo) || !isLiteral(x.Hi) {
			v.report(RuleFilterForm, "where", e, "between must range a column over literals")
			return
		}
		ref, ok := v.resolve(col, "where")
		if !ok {
			return
		}
		v.recordFilter(ref, e)
		if t := v.column(ref).Type; t == sqldb.TText || t == sqldb.TBool {
			v.report(RuleFilterOp, "where", e, "between is outside EQC for %s columns", t)
		}
	case *sqldb.LikeExpr:
		col, ok := x.X.(*sqldb.ColumnExpr)
		if !ok {
			v.report(RuleFilterForm, "where", e, "like must test a column")
			return
		}
		ref, ok := v.resolve(col, "where")
		if !ok {
			return
		}
		if x.Not {
			v.report(RuleFilterOp, "where", e, "not like is outside EQC")
			return
		}
		v.recordFilter(ref, e)
		if v.column(ref).Type != sqldb.TText {
			v.report(RuleFilterOp, "where", e, "like applies only to text columns")
		}
	case *sqldb.NotExpr:
		v.report(RuleFilterOp, "where", e, "negation is outside EQC")
	case *sqldb.IsNullExpr:
		v.report(RuleFilterOp, "where", e, "null tests are outside EQC")
	default:
		v.report(RuleFilterForm, "where", e, "predicate form is outside EQC")
	}
}

// checkDisjunction validates an OR tree: admitted only under
// AllowDisjunction, and then only as equality/range atoms over a
// single non-key column (the disjoint-interval / IN-set shape the
// disjunction extension extracts).
func (v *verifier) checkDisjunction(e sqldb.Expr) {
	if !v.opt.AllowDisjunction {
		v.report(RuleFilterConj, "where", e,
			"where must be conjunctive (disjunction extraction is disabled)")
		return
	}
	var ref sqldb.ColRef
	first := true
	okAll := true
	var walk func(sqldb.Expr)
	walk = func(d sqldb.Expr) {
		if b, ok := d.(*sqldb.BinaryExpr); ok && b.Op == sqldb.OpOr {
			walk(b.L)
			walk(b.R)
			return
		}
		var col *sqldb.ColumnExpr
		switch a := d.(type) {
		case *sqldb.BinaryExpr:
			if a.Op != sqldb.OpEq {
				// Disjoint intervals render as = or between; anything
				// else is not a shape the extension produces.
				v.report(RuleFilterConj, "where", e,
					"disjunction arms must be equalities or between ranges")
				okAll = false
				return
			}
			c, lit := v.splitColLiteral(a.L, a.R)
			if c == nil || lit == nil {
				v.report(RuleFilterForm, "where", d, "disjunction arm must compare a column with a literal")
				okAll = false
				return
			}
			col = c
		case *sqldb.BetweenExpr:
			c, ok := a.X.(*sqldb.ColumnExpr)
			if !ok || !isLiteral(a.Lo) || !isLiteral(a.Hi) {
				v.report(RuleFilterForm, "where", d, "disjunction arm must range a column over literals")
				okAll = false
				return
			}
			col = c
		default:
			v.report(RuleFilterConj, "where", e, "disjunction arms must be equalities or between ranges")
			okAll = false
			return
		}
		r, ok := v.resolve(col, "where")
		if !ok {
			okAll = false
			return
		}
		if first {
			ref, first = r, false
			return
		}
		if r != ref {
			v.report(RuleFilterConj, "where", e,
				"disjunction spans columns %s and %s; EQC admits single-column disjunctions only", ref, r)
			okAll = false
		}
	}
	walk(e)
	if okAll && !first {
		v.recordFilter(ref, e)
	}
}

// recordFilter notes a filter attribute and applies the non-key rule.
func (v *verifier) recordFilter(ref sqldb.ColRef, span sqldb.Expr) {
	v.filterSet[ref] = true
	if v.isKey(ref) {
		v.report(RuleFilterKey, "where", span,
			"filter on key column %s; EQC filters apply to non-key attributes only", ref)
	}
}

// checkFilterOperator enforces per-type operator legality.
func (v *verifier) checkFilterOperator(ref sqldb.ColRef, op sqldb.BinOp, span sqldb.Expr) {
	switch v.column(ref).Type {
	case sqldb.TText:
		if op != sqldb.OpEq {
			v.report(RuleFilterOp, "where", span,
				"text column %s admits only equality and like predicates", ref)
		}
	case sqldb.TBool:
		if op != sqldb.OpEq {
			v.report(RuleFilterOp, "where", span,
				"boolean column %s admits only equality predicates", ref)
		}
	}
}

// splitColLiteral matches col-vs-literal in either orientation.
func (v *verifier) splitColLiteral(l, r sqldb.Expr) (*sqldb.ColumnExpr, sqldb.Expr) {
	if c, ok := l.(*sqldb.ColumnExpr); ok && isLiteral(r) {
		return c, r
	}
	if c, ok := r.(*sqldb.ColumnExpr); ok && isLiteral(l) {
		return c, l
	}
	if c, ok := l.(*sqldb.ColumnExpr); ok {
		return c, nil
	}
	if c, ok := r.(*sqldb.ColumnExpr); ok {
		return c, nil
	}
	return nil, nil
}

func isLiteral(e sqldb.Expr) bool {
	switch x := e.(type) {
	case *sqldb.LiteralExpr:
		return true
	case *sqldb.NegExpr:
		return isLiteral(x.X)
	default:
		return false
	}
}

// checkConnectivity verifies the join predicates connect every FROM
// table (union-find over the recorded join edges).
func (v *verifier) checkConnectivity() {
	if len(v.from) < 2 {
		return
	}
	parent := map[string]string{}
	var find func(string) string
	find = func(x string) string {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	union := func(a, b string) { parent[find(a)] = find(b) }
	for _, t := range v.from {
		find(t)
	}
	for _, e := range v.joinEdges {
		if v.inFrom(e.A.Table) && v.inFrom(e.B.Table) {
			union(e.A.Table, e.B.Table)
		}
	}
	root := find(v.from[0])
	for _, t := range v.from[1:] {
		if find(t) != root {
			v.report(RuleJoinConnected, "where", literalSpan(strings.Join(v.from, ", ")),
				"join predicates do not connect table %s; EQC requires a connected join graph", t)
			return
		}
	}
}

func (v *verifier) checkGroupBy() {
	for _, g := range v.stmt.GroupBy {
		c, ok := g.(*sqldb.ColumnExpr)
		if !ok {
			v.report(RuleGroupByForm, "group by", g, "group by entries must be plain columns")
			continue
		}
		if ref, ok := v.resolve(c, "group by"); ok {
			v.groupSet[ref] = true
		}
	}
}

func (v *verifier) checkSelect() {
	hasAgg := false
	for _, it := range v.stmt.Items {
		if _, ok := it.Expr.(*sqldb.AggExpr); ok || sqldb.HasAggregate(it.Expr) {
			hasAgg = true
		}
	}
	for _, it := range v.stmt.Items {
		if agg, ok := it.Expr.(*sqldb.AggExpr); ok {
			if agg.Star {
				continue // count(*)
			}
			if sqldb.HasAggregate(agg.Arg) {
				v.report(RuleProjAgg, "select", it.Expr, "aggregates cannot nest")
				continue
			}
			v.checkMultiLinear(agg.Arg, it.Expr)
			continue
		}
		if sqldb.HasAggregate(it.Expr) {
			v.report(RuleProjAgg, "select", it.Expr,
				"the aggregate must be the outermost operator of an output expression")
			continue
		}
		v.checkMultiLinear(it.Expr, it.Expr)
		if hasAgg {
			for _, c := range sqldb.ColumnsOf(it.Expr) {
				ref, ok := v.resolve(c, "select")
				if !ok {
					continue
				}
				if !v.groupSet[ref] {
					v.report(RuleProjGrouping, "select", it.Expr,
						"plain output depends on %s, which is not a grouping column", ref)
					break
				}
			}
		}
	}
}

// checkMultiLinear verifies the scalar expression is a multi-linear
// polynomial over base columns: sums/differences of products in which
// no column appears twice, constant coefficients, and division only
// by literals. degreeOf returns, per column, an upper bound on the
// degree within any monomial; nil signals an already-reported error.
func (v *verifier) checkMultiLinear(e sqldb.Expr, span sqldb.Expr) {
	v.degreeOf(e, span)
}

func (v *verifier) degreeOf(e sqldb.Expr, span sqldb.Expr) map[sqldb.ColRef]int {
	switch x := e.(type) {
	case nil:
		return map[sqldb.ColRef]int{}
	case *sqldb.LiteralExpr:
		return map[sqldb.ColRef]int{}
	case *sqldb.ColumnExpr:
		ref, ok := v.resolve(x, "select")
		if !ok {
			return map[sqldb.ColRef]int{}
		}
		return map[sqldb.ColRef]int{ref: 1}
	case *sqldb.NegExpr:
		return v.degreeOf(x.X, span)
	case *sqldb.BinaryExpr:
		switch x.Op {
		case sqldb.OpAdd, sqldb.OpSub:
			l := v.degreeOf(x.L, span)
			r := v.degreeOf(x.R, span)
			for ref, d := range r {
				if d > l[ref] {
					l[ref] = d
				}
			}
			return l
		case sqldb.OpMul:
			l := v.degreeOf(x.L, span)
			r := v.degreeOf(x.R, span)
			for ref, d := range r {
				l[ref] += d
			}
			for ref, d := range l {
				if d > 1 {
					v.report(RuleProjLinear, "select", span,
						"column %s appears with degree %d; projections must be multi-linear", ref, d)
					return map[sqldb.ColRef]int{}
				}
			}
			return l
		case sqldb.OpDiv:
			if len(sqldb.ColumnsOf(x.R)) > 0 {
				v.report(RuleProjLinear, "select", span,
					"division by a column is outside EQC's multi-linear projection class")
				return map[sqldb.ColRef]int{}
			}
			return v.degreeOf(x.L, span)
		default:
			v.report(RuleProjLinear, "select", span,
				"operator %s is not part of a multi-linear projection", x.Op)
			return map[sqldb.ColRef]int{}
		}
	default:
		v.report(RuleProjLinear, "select", span,
			"expression form is not a multi-linear projection")
		return map[sqldb.ColRef]int{}
	}
}

func (v *verifier) checkHaving() {
	if v.stmt.Having == nil {
		return
	}
	for _, conjunct := range sqldb.Conjuncts(v.stmt.Having) {
		b, ok := conjunct.(*sqldb.BinaryExpr)
		if !ok || !b.Op.IsComparison() || b.Op == sqldb.OpNe {
			v.report(RuleHavingForm, "having", conjunct,
				"having atoms must compare an aggregate with a literal")
			continue
		}
		var agg *sqldb.AggExpr
		var lit sqldb.Expr
		if a, ok := b.L.(*sqldb.AggExpr); ok {
			agg, lit = a, b.R
		} else if a, ok := b.R.(*sqldb.AggExpr); ok {
			agg, lit = a, b.L
		}
		if agg == nil || !isLiteral(lit) {
			v.report(RuleHavingForm, "having", conjunct,
				"having atoms must compare an aggregate with a literal")
			continue
		}
		if agg.Star {
			continue // count(*) constraints carry no attribute
		}
		col, ok := agg.Arg.(*sqldb.ColumnExpr)
		if !ok {
			v.report(RuleHavingForm, "having", conjunct,
				"having aggregates must apply to a single column")
			continue
		}
		ref, ok := v.resolve(col, "having")
		if !ok {
			continue
		}
		if v.groupSet[ref] {
			v.report(RuleHavingGrouped, "having", conjunct,
				"having aggregates grouping column %s; EQC having applies to non-grouping attributes", ref)
		}
		if v.filterSet[ref] {
			v.report(RuleHavingOverlap, "having", conjunct,
				"column %s carries both a filter and a having predicate; EQC requires disjoint attribute sets", ref)
		}
	}
}

func (v *verifier) checkOrderBy() {
	for _, k := range v.stmt.OrderBy {
		if v.matchesOutput(k.Expr) {
			continue
		}
		v.report(RuleOrderProj, "order by", k.Expr,
			"order key does not appear in the projection; EQC requires order by ⊆ projection")
	}
}

// matchesOutput mirrors the executor's output-column matching: a bare
// column naming an output (alias or natural name), a structurally
// identical expression, or a column expression matching a projected
// column up to qualification.
func (v *verifier) matchesOutput(e sqldb.Expr) bool {
	if c, ok := e.(*sqldb.ColumnExpr); ok && c.Table == "" {
		for _, it := range v.stmt.Items {
			if strings.EqualFold(it.OutputName(), c.Column) {
				return true
			}
		}
	}
	es := e.String()
	for _, it := range v.stmt.Items {
		if it.Expr.String() == es {
			return true
		}
		if c, ok := e.(*sqldb.ColumnExpr); ok {
			if ic, ok2 := it.Expr.(*sqldb.ColumnExpr); ok2 && strings.EqualFold(ic.Column, c.Column) &&
				(c.Table == "" || strings.EqualFold(ic.Table, c.Table)) {
				return true
			}
		}
	}
	return false
}

func (v *verifier) checkLimit() {
	if v.stmt.Limit > 0 && v.stmt.Limit < 3 {
		v.report(RuleLimitMin, "limit", literalSpan(fmt.Sprintf("limit %d", v.stmt.Limit)),
			"limit %d is below 3; the extraction class requires limit >= 3", v.stmt.Limit)
	}
}
