package golint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// sqldbPathSuffix identifies the storage package by import-path
// suffix, so the rules also apply inside seeded test modules with a
// different module name.
const sqldbPathSuffix = "internal/sqldb"

// isWorkloadPkg reports whether the package holds workload/data
// generators, which are allowed to panic on impossible inputs.
func isWorkloadPkg(importPath string) bool {
	return strings.Contains(importPath, "internal/workloads")
}

// isAppSimulation reports whether the package models opaque
// application code (workload executables and runnable examples),
// which reads the database without the extractor's discipline.
func isAppSimulation(importPath string) bool {
	return isWorkloadPkg(importPath) || strings.Contains(importPath, "/examples/")
}

// isSqldbPkg reports whether the package is the storage engine.
func isSqldbPkg(importPath string) bool {
	return importPath == sqldbPathSuffix || strings.HasSuffix(importPath, "/"+sqldbPathSuffix)
}

// isCorePkg reports whether the package is the extraction pipeline.
func isCorePkg(importPath string) bool {
	return importPath == "internal/core" || strings.HasSuffix(importPath, "/internal/core")
}

// isServicePkg reports whether the package is (under) the serving
// tier, whose exported entry points must be cancellable.
func isServicePkg(importPath string) bool {
	return strings.Contains(importPath, "internal/service")
}

// funcsOf walks every function body in the package, handing the
// enclosing declaration to fn. Bodies of methods and plain functions
// both included; init and anonymous functions appear under their
// lexical parent.
func funcsOf(p *pkg, fn func(decl *ast.FuncDecl)) {
	for _, f := range p.files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}

// --- GL001: no panic in library packages ---------------------------

func checkPanic(fset *token.FileSet, p *pkg) []Finding {
	if p.tpkg.Name() == "main" || isWorkloadPkg(p.importPath) {
		return nil
	}
	var out []Finding
	funcsOf(p, func(fd *ast.FuncDecl) {
		if strings.HasPrefix(fd.Name.Name, "Must") {
			return // eager-validation wrapper; the panic is its contract
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if obj, ok := p.info.Uses[id].(*types.Builtin); !ok || obj.Name() != "panic" {
				return true // shadowed identifier, not the builtin
			}
			out = append(out, Finding{
				Pos:  fset.Position(call.Pos()),
				Rule: RulePanic,
				Msg: fmt.Sprintf("panic in library function %s; return an error (only Must* wrappers, "+
					"package main and internal/workloads may panic)", fd.Name.Name),
			})
			return true
		})
	})
	return out
}

// --- GL002: core must not mutate the source database ---------------

// databaseMutators are the *sqldb.Database methods that change
// database state observable by the application.
var databaseMutators = map[string]bool{
	"CreateTable": true,
	"DropTable":   true,
	"RenameTable": true,
	"Insert":      true,
}

func checkSourceMutation(fset *token.FileSet, p *pkg) []Finding {
	if !isCorePkg(p.importPath) {
		return nil
	}
	var out []Finding
	funcsOf(p, func(fd *ast.FuncDecl) {
		type mutation struct {
			pos    token.Pos
			method string
		}
		var muts []mutation
		renames := 0
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !databaseMutators[sel.Sel.Name] {
				return true
			}
			if !isSourceField(p, sel.X) || !isDatabaseType(p.info.Types[sel.X].Type) {
				return true
			}
			if sel.Sel.Name == "RenameTable" {
				renames++
			}
			muts = append(muts, mutation{pos: call.Pos(), method: sel.Sel.Name})
			return true
		})
		for _, m := range muts {
			if m.method == "RenameTable" && renames >= 2 {
				continue // rename paired with its restoring rename
			}
			out = append(out, Finding{
				Pos:  fset.Position(m.pos),
				Rule: RuleSourceMut,
				Msg: fmt.Sprintf("%s called on the session's source database in %s; "+
					"mutate a clone, or pair RenameTable with its restore in the same function",
					m.method, fd.Name.Name),
			})
		}
	})
	return out
}

// isSourceField matches a selector ending in the field name "source"
// (the Session's handle on D_I). Clones and locals have other names.
func isSourceField(p *pkg, e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "source" {
		return false
	}
	s, ok := p.info.Selections[sel]
	return ok && s.Kind() == types.FieldVal
}

// isDatabaseType matches *sqldb.Database (possibly through pointers).
func isDatabaseType(t types.Type) bool {
	return isSqldbNamed(t, "Database")
}

// isSqldbNamed reports whether t (after stripping pointers) is the
// named type internal/sqldb.<name>.
func isSqldbNamed(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && isSqldbPkg(obj.Pkg().Path())
}

// --- GL003: fmt.Errorf must wrap error arguments with %w -----------

func checkErrWrap(fset *token.FileSet, p *pkg) []Finding {
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	var out []Finding
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				return true
			}
			if !isPkgFunc(p, call.Fun, "fmt", "Errorf") {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true // dynamic format string: out of scope
			}
			format, err := strconv.Unquote(lit.Value)
			if err != nil || strings.Contains(format, "%w") {
				return true
			}
			for _, arg := range call.Args[1:] {
				t := p.info.Types[arg].Type
				if t == nil {
					continue
				}
				if types.Implements(t, errType) {
					out = append(out, Finding{
						Pos:  fset.Position(call.Pos()),
						Rule: RuleErrWrap,
						Msg:  "fmt.Errorf passes an error without %w; wrap it so errors.Is/As see the cause",
					})
					break
				}
			}
			return true
		})
	}
	return out
}

// isPkgFunc matches a call target of the form <pkg>.<name> where
// <pkg> resolves to the named standard package.
func isPkgFunc(p *pkg, fun ast.Expr, pkgPath, name string) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := p.info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == pkgPath
}

// --- GL005: no direct console output in the pipeline packages ------

// printFuncs are the fmt/log functions that write straight to the
// process streams.
var printFuncs = map[string][]string{
	"fmt": {"Print", "Printf", "Println"},
	"log": {"Print", "Printf", "Println"},
}

// checkDirectPrint forbids fmt.Print*/log.Print* inside internal/core
// and internal/sqldb. Those packages run under the probe scheduler
// and inside library callers; anything worth reporting belongs in the
// observability layer (internal/obs spans, ledger events, metrics) or
// in a returned error — a stray Println corrupts -trace/-stats output
// on stdout and is invisible to trace consumers. Writing to an
// injected io.Writer or fmt.Fprintf is fine; only the implicit
// process-stream forms are flagged.
func checkDirectPrint(fset *token.FileSet, p *pkg) []Finding {
	if !isCorePkg(p.importPath) && !isSqldbPkg(p.importPath) {
		return nil
	}
	var out []Finding
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for pkgPath, names := range printFuncs {
				for _, name := range names {
					if isPkgFunc(p, call.Fun, pkgPath, name) {
						out = append(out, Finding{
							Pos:  fset.Position(call.Pos()),
							Rule: RuleDirectPrint,
							Msg: fmt.Sprintf("%s.%s writes to the process streams from %s; "+
								"report through internal/obs (span/ledger/metrics) or return an error",
								pkgPath, name, p.importPath),
						})
						return true
					}
				}
			}
			return true
		})
	}
	return out
}

// --- GL004: Table row storage is private to internal/sqldb ---------

func checkTableAccess(fset *token.FileSet, p *pkg) []Finding {
	// internal/workloads and examples/ are exempt: their imperative
	// executables stand in for opaque third-party application code,
	// which reads the database however it likes — the rule protects
	// the extractor's invariants, not the application simulations.
	if isSqldbPkg(p.importPath) || isAppSimulation(p.importPath) {
		return nil
	}
	var out []Finding
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Rows" {
				return true
			}
			s, ok := p.info.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				return true // qualified identifiers, methods, other packages' Rows
			}
			if !isSqldbNamed(s.Recv(), "Table") {
				return true // e.g. sqldb.Result.Rows is public API
			}
			out = append(out, Finding{
				Pos:  fset.Position(sel.Pos()),
				Rule: RuleTableAccess,
				Msg: "direct access to sqldb.Table.Rows outside internal/sqldb; " +
					"use SnapshotRows/SetRows/RowCount/Get/Set",
			})
			return true
		})
	}
	return out
}

// --- GL006: service entry points take a context --------------------

// blockingFuncs are package-level functions whose call marks the
// enclosing function as doing I/O or network work.
var blockingFuncs = map[string][]string{
	"os":       {"Create", "Open", "OpenFile", "ReadFile", "WriteFile", "Remove", "RemoveAll", "Rename", "Truncate", "Mkdir", "MkdirAll"},
	"net":      {"Listen", "Dial", "DialTimeout"},
	"net/http": {"ListenAndServe", "ListenAndServeTLS", "Get", "Post", "Head"},
}

// fileMethods are *os.File methods that touch the file system.
var fileMethods = map[string]bool{
	"Read": true, "ReadAt": true, "Write": true, "WriteAt": true,
	"WriteString": true, "Sync": true, "Truncate": true, "Seek": true,
}

// checkServiceContext enforces GL006: inside internal/service, an
// exported function or method whose body performs I/O (os/net/http
// calls, *os.File methods) or spawns a goroutine must take a
// context.Context as its first parameter — the daemon's entry points
// must be cancellable end to end, and a context bolted on later never
// reaches the blocking call it was meant to bound. Exempt: ServeHTTP
// (http.Handler fixes its signature; the request context is inside r)
// and Close (the io.Closer convention).
func checkServiceContext(fset *token.FileSet, p *pkg) []Finding {
	if !isServicePkg(p.importPath) {
		return nil
	}
	var out []Finding
	funcsOf(p, func(fd *ast.FuncDecl) {
		if !fd.Name.IsExported() || fd.Name.Name == "ServeHTTP" || fd.Name.Name == "Close" {
			return
		}
		if hasCtxFirst(p, fd) {
			return
		}
		reason := blockingWork(p, fd.Body)
		if reason == "" {
			return
		}
		out = append(out, Finding{
			Pos:  fset.Position(fd.Pos()),
			Rule: RuleServiceCtx,
			Msg: fmt.Sprintf("exported service function %s %s but has no context.Context first parameter; "+
				"daemon entry points must be cancellable (GL006)", fd.Name.Name, reason),
		})
	})
	return out
}

// hasCtxFirst reports whether the function's first parameter is a
// context.Context.
func hasCtxFirst(p *pkg, fd *ast.FuncDecl) bool {
	params := fd.Type.Params
	if params == nil || len(params.List) == 0 {
		return false
	}
	t := p.info.Types[params.List[0].Type].Type
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// blockingWork scans a function body (closures included — work a
// closure does still runs under the entry point) for goroutine
// launches and I/O calls, returning a description of the first one
// found, or "".
func blockingWork(p *pkg, body *ast.BlockStmt) string {
	var reason string
	ast.Inspect(body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		if _, ok := n.(*ast.GoStmt); ok {
			reason = "spawns a goroutine"
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for pkgPath, names := range blockingFuncs {
			for _, name := range names {
				if isPkgFunc(p, call.Fun, pkgPath, name) {
					reason = fmt.Sprintf("calls %s.%s", pkgPath, name)
					return false
				}
			}
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && fileMethods[sel.Sel.Name] {
			if s, ok := p.info.Selections[sel]; ok && isOSFile(s.Recv()) {
				reason = fmt.Sprintf("performs file I/O (os.File.%s)", sel.Sel.Name)
				return false
			}
		}
		return true
	})
	return reason
}

// --- GL007: deterministic tiers stay deterministic ------------------

// isDeterministicPkg reports whether the package belongs to the
// deterministic tiers: the extraction pipeline, the instance/mutant
// generator and the static-analysis layer (which includes the bounded
// equivalence checker). Their outputs must be reproducible bit for
// bit, so ambient clocks and global randomness are off-limits.
func isDeterministicPkg(importPath string) bool {
	return isCorePkg(importPath) ||
		strings.Contains(importPath, "internal/xdata") ||
		strings.Contains(importPath, "internal/analysis")
}

// seededRandCtors are the math/rand functions that build an explicitly
// seeded generator — the sanctioned way to get randomness into the
// deterministic tiers.
var seededRandCtors = map[string]bool{
	"New":       true,
	"NewSource": true,
}

// checkDeterminism enforces GL007: no time.Now/time.Since calls and no
// top-level math/rand calls (other than the seeded constructors)
// inside the deterministic tiers. Only *calls* are flagged — assigning
// time.Now as a value (core.Config's default Clock) keeps the call
// site injectable and is allowed.
func checkDeterminism(fset *token.FileSet, p *pkg) []Finding {
	if !isDeterministicPkg(p.importPath) {
		return nil
	}
	var out []Finding
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, name := range []string{"Now", "Since"} {
				if isPkgFunc(p, call.Fun, "time", name) {
					out = append(out, Finding{
						Pos:  fset.Position(call.Pos()),
						Rule: RuleDeterminism,
						Msg: fmt.Sprintf("time.%s called in deterministic package %s; "+
							"inject the clock (core.Config.Clock) instead", name, p.importPath),
					})
					return true
				}
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && !seededRandCtors[sel.Sel.Name] {
				if isPkgFunc(p, call.Fun, "math/rand", sel.Sel.Name) {
					out = append(out, Finding{
						Pos:  fset.Position(call.Pos()),
						Rule: RuleDeterminism,
						Msg: fmt.Sprintf("top-level math/rand.%s called in deterministic package %s; "+
							"use a seeded *rand.Rand (rand.New(rand.NewSource(seed)))", sel.Sel.Name, p.importPath),
					})
					return true
				}
			}
			return true
		})
	}
	return out
}

// --- GL008: no per-row Value-map allocation in the storage engine ---

// checkBatchAlloc enforces GL008: inside internal/sqldb, no map with
// sqldb.Value elements may be allocated inside a loop. Per-row
// map[string]Value (or map[*AggExpr]Value) allocations were the
// dominant cost of the pre-vectorized executor — one map per row per
// probe, millions per extraction — and the columnar engine exists to
// avoid them. Hoist the allocation out of the loop and reuse it, or
// use positional slices keyed by resolved slots.
func checkBatchAlloc(fset *token.FileSet, p *pkg) []Finding {
	if !isSqldbPkg(p.importPath) {
		return nil
	}
	var out []Finding
	flagAllocs := func(loop ast.Node, body *ast.BlockStmt) {
		ast.Inspect(body, func(n ast.Node) bool {
			var t types.Type
			switch x := n.(type) {
			case *ast.CallExpr:
				id, ok := x.Fun.(*ast.Ident)
				if !ok || id.Name != "make" {
					return true
				}
				if b, ok := p.info.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
					return true
				}
				t = p.info.Types[x].Type
			case *ast.CompositeLit:
				t = p.info.Types[x].Type
			default:
				return true
			}
			if !isValueMap(t) {
				return true
			}
			out = append(out, Finding{
				Pos:  fset.Position(n.Pos()),
				Rule: RuleBatchAlloc,
				Msg: "map with sqldb.Value elements allocated inside a loop; " +
					"hoist and reuse it, or use a positional slice (GL008)",
			})
			return true
		})
	}
	funcsOf(p, func(fd *ast.FuncDecl) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.ForStmt:
				flagAllocs(x, x.Body)
				return false // inner loops are covered by the outer walk
			case *ast.RangeStmt:
				flagAllocs(x, x.Body)
				return false
			}
			return true
		})
	})
	return out
}

// --- GL009: telemetry primitives live behind internal/obs -----------

// obsOnlyImports are the standard-library telemetry packages that the
// rest of the tree must reach through internal/obs instead of
// importing directly.
var obsOnlyImports = map[string]string{
	"log":      "obs.Logger",
	"log/slog": "obs.Logger",
	"expvar":   "obs.Metrics",
}

// isObsPkg reports whether the package is (under) the observability
// layer, the one place allowed to bind to the standard telemetry
// packages.
func isObsPkg(importPath string) bool {
	return strings.Contains(importPath, "internal/obs")
}

// checkObsConstruct enforces GL009: outside internal/obs (and the
// opaque application simulations), no package imports log, log/slog
// or expvar directly. The observability layer owns the process's
// telemetry surface — loggers carry job/phase correlation attrs,
// metrics export through one registry with a single exposition
// encoder — and a stray slog.Info or expvar.NewInt bypasses all of
// it: uncorrelated records, metrics invisible to /metrics. The
// import is flagged rather than individual calls: any use requires
// it, and types smuggled out of these packages are as binding as
// calls.
func checkObsConstruct(fset *token.FileSet, p *pkg) []Finding {
	if isObsPkg(p.importPath) || isAppSimulation(p.importPath) {
		return nil
	}
	var out []Finding
	for _, f := range p.files {
		for _, spec := range f.Imports {
			path := strings.Trim(spec.Path.Value, `"`)
			repl, ok := obsOnlyImports[path]
			if !ok {
				continue
			}
			out = append(out, Finding{
				Pos:  fset.Position(spec.Pos()),
				Rule: RuleObsConstruct,
				Msg: fmt.Sprintf("package %s imports %q directly; route telemetry through internal/obs (%s) "+
					"so records stay correlated and metrics stay scrapeable (GL009)", p.importPath, path, repl),
			})
		}
	}
	return out
}

// --- GL010: file I/O lives in the storage tiers ---------------------

// isStoragePkg reports whether the package is the disk-backed storage
// tier — heap pages, WAL, durable probe cache — where file I/O is the
// charter.
func isStoragePkg(importPath string) bool {
	return strings.Contains(importPath, "internal/storage")
}

// isLinterPkg reports whether the package is the linter itself, which
// reads source trees off disk by nature.
func isLinterPkg(importPath string) bool {
	return strings.Contains(importPath, "internal/analysis/golint")
}

// checkFileIO enforces GL010: outside package main, internal/storage,
// internal/service and the linter itself, no package imports "os".
// Durability has sharp edges — fsync ordering, torn-tail truncation,
// crash recovery — and keeping every file handle inside two audited
// tiers is what lets the rest of the tree stay deterministic and
// testable against io.Reader/io.Writer. As with GL009 the import is
// flagged, not individual calls: any use requires it.
func checkFileIO(fset *token.FileSet, p *pkg) []Finding {
	if p.tpkg.Name() == "main" || isStoragePkg(p.importPath) ||
		isServicePkg(p.importPath) || isLinterPkg(p.importPath) {
		return nil
	}
	var out []Finding
	for _, f := range p.files {
		for _, spec := range f.Imports {
			if strings.Trim(spec.Path.Value, `"`) != "os" {
				continue
			}
			out = append(out, Finding{
				Pos:  fset.Position(spec.Pos()),
				Rule: RuleFileIO,
				Msg: fmt.Sprintf("package %s imports \"os\"; file I/O is confined to internal/storage and "+
					"internal/service — take an io.Reader/io.Writer or go through those tiers (GL010)", p.importPath),
			})
		}
	}
	return out
}

// isValueMap matches maps carrying sqldb.Value payloads after
// stripping named types: map[K]Value, and — equally hot in the
// aggregation/sort paths — map[K][]Value and map[K]Row, whose per-row
// allocation costs a slice header plus the map insert on every group
// probe.
func isValueMap(t types.Type) bool {
	if t == nil {
		return false
	}
	m, ok := t.Underlying().(*types.Map)
	if !ok {
		return false
	}
	elem := m.Elem()
	if isSqldbNamed(elem, "Value") || isSqldbNamed(elem, "Row") {
		return true
	}
	if s, ok := elem.Underlying().(*types.Slice); ok {
		return isSqldbNamed(s.Elem(), "Value")
	}
	return false
}

// isOSFile matches *os.File (possibly through pointers).
func isOSFile(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "File" && obj.Pkg() != nil && obj.Pkg().Path() == "os"
}
