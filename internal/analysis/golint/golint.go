// Package golint implements the project's custom Go linter on top of
// the standard library's go/ast, go/parser and go/types packages —
// deliberately no golang.org/x/tools dependency, so the analysis layer
// stays as self-contained as the rest of the reproduction.
//
// The project-specific invariants enforced (IDs are stable and
// catalogued in DESIGN.md §6):
//
//	GL001 — library packages do not panic. The extraction pipeline is
//	        a long-running probe loop; a panic in sqldb/core/sqlparser
//	        aborts a whole extraction instead of failing one probe.
//	        Exempt: Must*-named wrappers (eager-validation helpers for
//	        statically known inputs), package main, workload
//	        generators under internal/workloads, and test files
//	        (which are not loaded at all).
//	GL002 — internal/core treats the source database D_I as
//	        non-invasively as the paper requires: mutating methods of
//	        *sqldb.Database may not be called through the Session's
//	        source field, except RenameTable when the enclosing
//	        function also performs the restoring rename (>= 2 calls).
//	        Clones (silo, locals) are free to mutate.
//	GL003 — fmt.Errorf calls that pass an error argument must wrap it
//	        with %w so module boundaries stay errors.Is/As-friendly.
//	GL004 — only internal/sqldb touches sqldb.Table row storage: the
//	        Rows field is off-limits elsewhere (use SnapshotRows /
//	        SetRows / RowCount / Get / Set). internal/workloads is
//	        exempt — its imperative executables model opaque
//	        application code outside the extractor's discipline.
//	GL005 — internal/core and internal/sqldb never print to the
//	        process streams: fmt.Print*/log.Print* are forbidden
//	        there. Diagnostics flow through internal/obs (spans,
//	        ledger events, metrics) or returned errors; a stray
//	        Println would corrupt -trace/-stats consumers of stdout.
//	GL006 — internal/service entry points are cancellable: an exported
//	        function there that performs I/O (os/net/http calls,
//	        *os.File methods) or spawns a goroutine must take a
//	        context.Context as its first parameter. Exempt: ServeHTTP
//	        (signature fixed by http.Handler; the request carries its
//	        own context) and Close (io.Closer convention).
//	GL007 — the deterministic tiers (internal/core, internal/xdata and
//	        everything under internal/analysis) never consult ambient
//	        nondeterminism: calling time.Now/time.Since or any
//	        top-level math/rand function is forbidden there. Time is
//	        injected through core.Config.Clock, randomness through a
//	        seeded *rand.Rand — so the extraction transcript, the
//	        bounded-equivalence verdicts and the mutant accounting are
//	        byte-identical across runs and worker counts. Constructing
//	        a seeded generator (rand.New, rand.NewSource) is allowed,
//	        as is referencing time.Now as a value (the default Clock).
//	GL008 — internal/sqldb never allocates a map with sqldb.Value
//	        payloads inside a loop — elements of type Value, []Value
//	        or Row alike. Per-row map[string]Value was the dominant
//	        allocation cost of the pre-vectorized executor, and the
//	        vectorized aggregation/sort paths tempt the slice-valued
//	        variants; hot paths must hoist and reuse such maps or use
//	        positional slices keyed by resolved slots.
//	GL009 — telemetry primitives are bound once, in internal/obs: no
//	        other package imports log, log/slog or expvar directly.
//	        Loggers obtained from internal/obs carry job_id/phase
//	        correlation and honor the daemon's level flag; metrics
//	        registered through obs.Metrics appear in both the JSON
//	        and Prometheus expositions of /metrics. Direct stdlib use
//	        bypasses all of that. Exempt: internal/obs itself (and
//	        subpackages) and the opaque application simulations
//	        (internal/workloads, examples/).
//	GL010 — file I/O lives in the storage tiers: no library package
//	        imports "os" except internal/storage (heap pages, WAL,
//	        probe cache — durability is its charter) and
//	        internal/service (the durable job log). Everything else
//	        takes io.Reader/io.Writer or goes through those tiers, so
//	        fsync discipline and crash recovery stay in one audited
//	        place. Exempt: package main (flags and exit codes live
//	        there) and the linter itself (it reads source trees).
//
// The entry point is LintDir, which loads and typechecks every
// non-test package under a module root using a minimal module-aware
// loader (stdlib imports are resolved with the source importer;
// module-internal imports are typechecked in dependency order).
package golint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Rule IDs.
const (
	RulePanic        = "GL001"
	RuleSourceMut    = "GL002"
	RuleErrWrap      = "GL003"
	RuleTableAccess  = "GL004"
	RuleDirectPrint  = "GL005"
	RuleServiceCtx   = "GL006"
	RuleDeterminism  = "GL007"
	RuleBatchAlloc   = "GL008"
	RuleObsConstruct = "GL009"
	RuleFileIO       = "GL010"
)

// Finding is one lint violation.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Rule, f.Msg)
}

// pkg is one loaded, typechecked package.
type pkg struct {
	importPath string // module-qualified import path
	dir        string
	files      []*ast.File
	tpkg       *types.Package
	info       *types.Info
}

// LintDir loads every non-test package under root (a module root
// containing go.mod) and runs all analyzers. Findings are sorted by
// position. A non-nil error means the tree could not be loaded or
// typechecked — not that findings exist.
func LintDir(root string) ([]Finding, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	pkgs, err := loadPackages(fset, root, modPath)
	if err != nil {
		return nil, err
	}
	if err := typecheck(fset, pkgs); err != nil {
		return nil, err
	}
	var findings []Finding
	for _, p := range pkgs {
		findings = append(findings, checkPanic(fset, p)...)
		findings = append(findings, checkSourceMutation(fset, p)...)
		findings = append(findings, checkErrWrap(fset, p)...)
		findings = append(findings, checkTableAccess(fset, p)...)
		findings = append(findings, checkDirectPrint(fset, p)...)
		findings = append(findings, checkServiceContext(fset, p)...)
		findings = append(findings, checkDeterminism(fset, p)...)
		findings = append(findings, checkBatchAlloc(fset, p)...)
		findings = append(findings, checkObsConstruct(fset, p)...)
		findings = append(findings, checkFileIO(fset, p)...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return findings[i].Rule < findings[j].Rule
	})
	return findings, nil
}

// modulePath extracts the module directive from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("golint: reading module file: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("golint: no module directive in %s", gomod)
}

// loadPackages walks the module tree and parses every directory that
// contains non-test Go files. Vendored, hidden and testdata
// directories are skipped.
func loadPackages(fset *token.FileSet, root, modPath string) ([]*pkg, error) {
	var pkgs []*pkg
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		var files []*ast.File
		for _, e := range entries {
			fn := e.Name()
			if e.IsDir() || !strings.HasSuffix(fn, ".go") || strings.HasSuffix(fn, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(path, fn), nil, parser.ParseComments)
			if err != nil {
				return fmt.Errorf("golint: parse: %w", err)
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		ip := modPath
		if rel != "." {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		pkgs = append(pkgs, &pkg{importPath: ip, dir: path, files: files})
		return nil
	})
	return pkgs, err
}

// moduleImporter resolves module-internal imports from the loaded set
// and everything else (the standard library) from source.
type moduleImporter struct {
	std  types.Importer
	done map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.done[path]; ok {
		return p, nil
	}
	return m.std.Import(path)
}

// typecheck runs the type checker over all packages in dependency
// order (module-internal imports must be checked before importers).
func typecheck(fset *token.FileSet, pkgs []*pkg) error {
	byPath := map[string]*pkg{}
	for _, p := range pkgs {
		byPath[p.importPath] = p
	}
	imp := &moduleImporter{
		std:  importer.ForCompiler(fset, "source", nil),
		done: map[string]*types.Package{},
	}
	const (
		white = 0
		grey  = 1
		black = 2
	)
	state := map[string]int{}
	var visit func(p *pkg) error
	visit = func(p *pkg) error {
		switch state[p.importPath] {
		case black:
			return nil
		case grey:
			return fmt.Errorf("golint: import cycle through %s", p.importPath)
		}
		state[p.importPath] = grey
		for _, f := range p.files {
			for _, spec := range f.Imports {
				dep := strings.Trim(spec.Path.Value, `"`)
				if dp, ok := byPath[dep]; ok {
					if err := visit(dp); err != nil {
						return err
					}
				}
			}
		}
		p.info = &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: imp}
		tp, err := conf.Check(p.importPath, fset, p.files, p.info)
		if err != nil {
			return fmt.Errorf("golint: typecheck %s: %w", p.importPath, err)
		}
		p.tpkg = tp
		imp.done[p.importPath] = tp
		state[p.importPath] = black
		return nil
	}
	for _, p := range pkgs {
		if err := visit(p); err != nil {
			return err
		}
	}
	return nil
}
