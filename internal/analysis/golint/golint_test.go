package golint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"unmasque/internal/analysis/golint"
)

// writeTree materializes a module tree under a temp dir.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// seededModule builds a small module exercising every rule: each
// violation is tagged with a “want:RULE” comment on its line, and
// legal constructs carry none. The module name differs from the real
// repo on purpose — the rules must key on path suffixes, not on the
// module name.
func seededModule(t *testing.T) string {
	return writeTree(t, map[string]string{
		"go.mod": "module example.com/app\n\ngo 1.22\n",
		"internal/sqldb/db.go": `package sqldb

type Row []int

type Table struct {
	Name string
	Rows []Row
}

func (t *Table) SnapshotRows() []Row { return t.Rows }

type Database struct{ tables map[string]*Table }

func (d *Database) CreateTable(name string) error { return nil }
func (d *Database) DropTable(name string) error   { return nil }
func (d *Database) RenameTable(a, b string) error { return nil }
func (d *Database) Insert(name string, r Row) error { return nil }
func (d *Database) Table(name string) *Table      { return d.tables[name] }
func (d *Database) Clone() *Database              { return &Database{} }

type Value struct{ I int64 }

// badPerRowAlloc allocates Value maps once per row: GL008.
func badPerRowAlloc(rows []Row) int {
	n := 0
	for range rows {
		m := make(map[string]Value) // want:GL008
		l := map[int]Value{}        // want:GL008
		n += len(m) + len(l)
	}
	return n
}

// goodHoistedAlloc reuses one map across the loop: legal.
func goodHoistedAlloc(rows []Row) int {
	m := make(map[string]Value)
	for i := range rows {
		m["k"] = Value{I: int64(i)}
	}
	return len(m)
}

// goodNonValueMap allocates a map of plain ints in a loop: GL008 only
// guards Value elements.
func goodNonValueMap(rows []Row) int {
	n := 0
	for range rows {
		n += len(make(map[string]int64))
	}
	return n
}

// badPerRowSliceMap allocates maps of Value-slice and Row payloads per
// row: the aggregation-path shapes GL008 also covers.
func badPerRowSliceMap(rows []Row) int {
	n := 0
	for range rows {
		m := make(map[string][]Value) // want:GL008
		r := map[int]Row{}            // want:GL008
		n += len(m) + len(r)
	}
	return n
}
`,
		"internal/core/session.go": `package core

import (
	"errors"
	"fmt"

	"example.com/app/internal/sqldb"
)

type Session struct {
	source *sqldb.Database
	silo   *sqldb.Database
}

// badPanic must trip GL001.
func badPanic(x int) int {
	if x < 0 {
		panic("negative") // want:GL001
	}
	return x
}

// MustPositive is a Must* wrapper: its panic is exempt.
func MustPositive(x int) int {
	if x < 0 {
		panic("negative")
	}
	return x
}

// badInsert mutates the source database: GL002.
func (s *Session) badInsert() error {
	return s.source.Insert("t", sqldb.Row{1}) // want:GL002
}

// badRename renames the source without restoring it: GL002.
func (s *Session) badRename() error {
	return s.source.RenameTable("t", "u") // want:GL002
}

// renamePaired performs rename + restore: legal.
func (s *Session) renamePaired() error {
	if err := s.source.RenameTable("t", "u"); err != nil {
		return err
	}
	return s.source.RenameTable("u", "t")
}

// siloMutation mutates the working clone: legal.
func (s *Session) siloMutation() error {
	return s.silo.Insert("t", sqldb.Row{1})
}

// badWrap passes an error through %v: GL003.
func badWrap() error {
	err := errors.New("boom")
	return fmt.Errorf("step failed: %v", err) // want:GL003
}

// goodWrap uses %w: legal.
func goodWrap() error {
	err := errors.New("boom")
	return fmt.Errorf("step failed: %w", err)
}

// badRows reaches into table internals: GL004.
func badRows(tbl *sqldb.Table) int {
	return len(tbl.Rows) // want:GL004
}

// goodRows uses the accessor: legal.
func goodRows(tbl *sqldb.Table) int {
	return len(tbl.SnapshotRows())
}
`,
		"internal/core/debug.go": `package core

import (
	"fmt"
	"io"
	"log" // want:GL009
	"os"  // want:GL010
)

// badPrints write to the process streams from the pipeline: GL005.
func badPrints(n int) {
	fmt.Println("probing", n)   // want:GL005
	fmt.Printf("probe %d\n", n) // want:GL005
	log.Printf("probe %d", n)   // want:GL005
}

// goodPrints target an injected writer: legal under GL005 (the os
// import itself is still GL010 — core is not a storage tier).
func goodPrints(w io.Writer, n int) {
	fmt.Fprintf(w, "probe %d\n", n)
	fmt.Fprintln(os.Stderr, "fatal setup problem")
}
`,
		"cmd/report/main.go": `package main

import "fmt"

// Command-line surfaces own stdout: GL005 does not apply here.
func main() {
	fmt.Println("extracted")
}
`,
		"internal/workloads/gen/gen.go": `package gen

import "example.com/app/internal/sqldb"

// Workload generators may panic on impossible static inputs.
func MustScale(n int) int {
	if n <= 0 {
		panic("bad scale")
	}
	return n
}

func generate(n int) int {
	if n > 1000 {
		panic("too large") // exempt: internal/workloads
	}
	return n
}

// scanRows models imperative application code, which reads table
// storage directly; internal/workloads is exempt from GL004.
func scanRows(tbl *sqldb.Table) int {
	return len(tbl.Rows)
}
`,
		"cmd/tool/main.go": `package main

func main() {
	panic("cli crash is fine") // exempt: package main
}
`,
		"internal/xdata/gen.go": `package xdata

import (
	"math/rand"
	"time"
)

// badClock reads the ambient clock from a deterministic tier: GL007.
func badClock() int64 {
	return time.Now().Unix() // want:GL007
}

// badElapsed measures wall time: GL007.
func badElapsed(start time.Time) time.Duration {
	return time.Since(start) // want:GL007
}

// badGlobalRand draws from the shared global generator: GL007.
func badGlobalRand() int {
	return rand.Intn(10) // want:GL007
}

// seededRand builds and uses an explicitly seeded generator: legal.
func seededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// clockValue references time.Now as a value without calling it (the
// injectable-default pattern): legal.
func clockValue(clock func() time.Time) func() time.Time {
	if clock == nil {
		clock = time.Now
	}
	return clock
}
`,
		"internal/analysis/check/check.go": `package check

import "time"

// badStamp shows the rule also covers internal/analysis: GL007.
func badStamp() time.Time {
	return time.Now() // want:GL007
}
`,
		"internal/service/telemetry.go": `package service

import (
	"expvar"   // want:GL009
	"log/slog" // want:GL009

	obslog "log" // want:GL009
)

// Direct stdlib telemetry outside internal/obs: GL009 flags the
// imports themselves (renamed imports included).
var hits = expvar.NewInt("hits")

func record(msg string) {
	slog.Info(msg)
	obslog.Println(msg)
}
`,
		"internal/obs/obs.go": `package obs

import (
	"expvar"
	"log/slog"
)

// The observability layer itself binds the stdlib primitives: legal.
var gauge = expvar.NewInt("gauge")

func level() slog.Level { return slog.LevelInfo }
`,
		"internal/obs/telemetry/telemetry.go": `package telemetry

import "log/slog"

// Subpackages of internal/obs are part of the layer: legal.
func attr(k, v string) slog.Attr { return slog.String(k, v) }
`,
		"internal/bench/write.go": `package bench

import "os" // want:GL010

// WriteOut does direct file I/O outside the storage tiers: GL010.
func WriteOut(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
`,
		"internal/storage/disk.go": `package storage

import "os"

// OpenHeap is the storage tier — file I/O is its charter: legal.
func OpenHeap(path string) (*os.File, error) { return os.Open(path) }
`,
		"internal/service/clock.go": `package service

import "time"

// Stamp is outside the deterministic tiers; GL007 does not apply.
func Stamp() time.Time { return time.Now() }
`,
		"internal/service/svc.go": `package service

import (
	"context"
	"net"
	"net/http"
	"os"
)

// OpenLog does file I/O without a context: GL006.
func OpenLog(path string) (*os.File, error) { // want:GL006
	return os.OpenFile(path, os.O_RDWR, 0)
}

// StartWorkers spawns goroutines without a context: GL006.
func StartWorkers(n int) { // want:GL006
	for i := 0; i < n; i++ {
		go func() {}()
	}
}

// Flush writes through an os.File without a context: GL006.
func Flush(f *os.File) error { // want:GL006
	return f.Sync()
}

// OpenLogCtx is the compliant form: legal.
func OpenLogCtx(ctx context.Context, path string) (*os.File, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return os.OpenFile(path, os.O_RDWR, 0)
}

// Listen takes its context first: legal.
func Listen(ctx context.Context, addr string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}

type Store struct{ f *os.File }

// Close is exempt: the io.Closer convention fixes the signature.
func (s *Store) Close() error { return s.f.Sync() }

// ServeHTTP is exempt: http.Handler fixes the signature and the
// request carries its own context.
func (s *Store) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	go func() {}()
}

// unexported functions are out of scope.
func flush(f *os.File) error { return f.Sync() }

// Depth is pure computation: no context needed.
func Depth(xs []int) int { return len(xs) }
`,
	})
}

// wantedFindings scans the seeded sources for want:RULE markers.
func wantedFindings(t *testing.T, root string) map[string]int {
	t.Helper()
	want := map[string]int{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(root, path)
		for i, line := range strings.Split(string(data), "\n") {
			if idx := strings.Index(line, "want:"); idx >= 0 {
				rule := strings.TrimSpace(line[idx+len("want:"):])
				want[filepath.ToSlash(rel)+":"+itoa(i+1)+":"+rule]++
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return want
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestSeededViolations(t *testing.T) {
	root := seededModule(t)
	findings, err := golint.LintDir(root)
	if err != nil {
		t.Fatalf("LintDir: %v", err)
	}
	got := map[string]int{}
	for _, f := range findings {
		rel, err := filepath.Rel(root, f.Pos.Filename)
		if err != nil {
			t.Fatal(err)
		}
		got[filepath.ToSlash(rel)+":"+itoa(f.Pos.Line)+":"+f.Rule]++
	}
	want := wantedFindings(t, root)
	for k := range want {
		if got[k] == 0 {
			t.Errorf("expected finding %s did not fire", k)
		}
	}
	for k := range got {
		if want[k] == 0 {
			t.Errorf("unexpected finding %s", k)
		}
	}
}

// TestRuleIDsCovered keeps the seeded module honest: every rule in
// the catalogue must have at least one seeded violation.
func TestRuleIDsCovered(t *testing.T) {
	root := seededModule(t)
	want := wantedFindings(t, root)
	for _, rule := range []string{
		golint.RulePanic, golint.RuleSourceMut, golint.RuleErrWrap, golint.RuleTableAccess,
		golint.RuleDirectPrint, golint.RuleServiceCtx, golint.RuleDeterminism,
		golint.RuleBatchAlloc, golint.RuleObsConstruct, golint.RuleFileIO,
	} {
		found := false
		for k := range want {
			if strings.HasSuffix(k, ":"+rule) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("seeded module has no violation for %s", rule)
		}
	}
}

// TestSelfLint runs the linter over the repository itself; the tree
// must be clean (this is also enforced by ci.sh via cmd/unmasquelint).
func TestSelfLint(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecking the full module is not a -short test")
	}
	findings, err := golint.LintDir(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatalf("LintDir: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

func TestLintDirErrors(t *testing.T) {
	t.Run("no-gomod", func(t *testing.T) {
		if _, err := golint.LintDir(t.TempDir()); err == nil {
			t.Error("expected error for missing go.mod")
		}
	})
	t.Run("broken-source", func(t *testing.T) {
		root := writeTree(t, map[string]string{
			"go.mod":  "module example.com/broken\n\ngo 1.22\n",
			"main.go": "package broken\n\nfunc f() int { return undefinedSymbol }\n",
		})
		if _, err := golint.LintDir(root); err == nil {
			t.Error("expected typecheck error")
		}
	})
}
