package app

// Tests of the Executable concurrency contract the probe scheduler
// relies on: SQLExecutable and ImperativeExecutable tolerate
// concurrent Run on distinct databases, CountingExecutable counts
// atomically, and Serialized enforces mutual exclusion for
// implementations that opt out via ConcurrencyReporter. Run under
// `go test -race` in CI.

import (
	"context"
	"sync"
	"testing"

	"unmasque/internal/sqldb"
)

// fanOut runs exe.Run concurrently, each goroutine on its own clone,
// the way the core scheduler drives probes.
func fanOut(t *testing.T, exe Executable, db *sqldb.Database, goroutines, runs int) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < runs; r++ {
				clone := db.Clone()
				if _, err := exe.Run(context.Background(), clone); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestSQLExecutableConcurrentRun(t *testing.T) {
	db := tinyDB(t)
	exe := MustSQLExecutable("q", "select x from t where x >= 2")
	fanOut(t, exe, db, 8, 25)
}

func TestImperativeExecutableConcurrentRun(t *testing.T) {
	db := tinyDB(t)
	exe := NewImperativeExecutable("imp", func(ctx context.Context, db *sqldb.Database) (*sqldb.Result, error) {
		tbl, err := db.Table("t")
		if err != nil {
			return nil, err
		}
		res := &sqldb.Result{Columns: []string{"x"}}
		for i := 0; i < tbl.RowCount(); i++ {
			v, err := tbl.Get(i, "x")
			if err != nil {
				return nil, err
			}
			if !v.Null && v.I >= 2 {
				res.Rows = append(res.Rows, sqldb.Row{v})
			}
		}
		return res, nil
	}, "select x from t where x >= 2")
	fanOut(t, exe, db, 8, 25)
}

func TestCountingExecutableCountsAtomically(t *testing.T) {
	db := tinyDB(t)
	const goroutines, runs = 8, 25
	exe := &CountingExecutable{Inner: MustSQLExecutable("q", "select x from t")}
	fanOut(t, exe, db, goroutines, runs)
	if got := exe.Invocations(); got != goroutines*runs {
		t.Fatalf("Invocations() = %d, want %d", got, goroutines*runs)
	}
}

// racyExecutable mutates unsynchronized state in Run; only safe when
// wrapped in Serialized (the race detector enforces this).
type racyExecutable struct {
	inner  Executable
	active int
	peak   int
}

func (r *racyExecutable) Name() string { return r.inner.Name() }

func (r *racyExecutable) Run(ctx context.Context, db *sqldb.Database) (*sqldb.Result, error) {
	r.active++
	if r.active > r.peak {
		r.peak = r.active
	}
	res, err := r.inner.Run(ctx, db)
	r.active--
	return res, err
}

func (r *racyExecutable) ConcurrentRunSafe() bool { return false }

func TestSerializedEnforcesMutualExclusion(t *testing.T) {
	db := tinyDB(t)
	racy := &racyExecutable{inner: MustSQLExecutable("q", "select x from t")}
	var rep ConcurrencyReporter = racy
	if rep.ConcurrentRunSafe() {
		t.Fatal("racy executable must report unsafe")
	}
	wrapped := &Serialized{Inner: racy}
	if !wrapped.ConcurrentRunSafe() {
		t.Fatal("Serialized must report safe")
	}
	fanOut(t, wrapped, db, 8, 25)
	if racy.peak != 1 {
		t.Fatalf("Serialized let %d Run calls overlap", racy.peak)
	}
	if wrapped.Name() != "q" {
		t.Fatalf("Name() = %q", wrapped.Name())
	}
}
