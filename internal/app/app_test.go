package app

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"unmasque/internal/sqldb"
)

func tinyDB(t *testing.T) *sqldb.Database {
	t.Helper()
	db := sqldb.NewDatabase()
	if err := db.CreateTable(sqldb.TableSchema{
		Name:    "t",
		Columns: []sqldb.Column{{Name: "x", Type: sqldb.TInt}},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := db.Insert("t", sqldb.NewInt(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestObfuscateRoundTrip(t *testing.T) {
	sql := "select x from t where x > 1;"
	blob := Obfuscate(sql)
	if strings.Contains(string(blob), "select") {
		t.Error("obfuscated blob still contains readable SQL")
	}
	if got := Deobfuscate(blob); got != sql {
		t.Errorf("round trip: %q", got)
	}
}

func TestSQLExecutableRun(t *testing.T) {
	db := tinyDB(t)
	e, err := NewSQLExecutable("probe", "select x from t where x >= 2")
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background(), db)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowCount() != 2 {
		t.Errorf("got %d rows", res.RowCount())
	}
	if e.Invocations() != 1 {
		t.Errorf("invocations = %d", e.Invocations())
	}
}

func TestSQLExecutableValidatesEagerly(t *testing.T) {
	if _, err := NewSQLExecutable("bad", "select from"); err == nil {
		t.Error("malformed hidden SQL should be rejected at construction")
	}
}

func TestRunWithTimeoutMissingTableErrorsFast(t *testing.T) {
	db := tinyDB(t)
	if err := db.RenameTable("t", "t_renamed"); err != nil {
		t.Fatal(err)
	}
	e := MustSQLExecutable("probe", "select x from t")
	start := time.Now()
	_, err := RunWithTimeout(e, db, 5*time.Second)
	if !errors.Is(err, sqldb.ErrNoSuchTable) {
		t.Fatalf("want ErrNoSuchTable, got %v", err)
	}
	if time.Since(start) > time.Second {
		t.Error("missing-table error should be immediate")
	}
}

func TestRunWithTimeoutCutsOffSlowApp(t *testing.T) {
	db := tinyDB(t)
	e := MustSQLExecutable("slow", "select x from t")
	e.SetStartupDelay(500 * time.Millisecond)
	_, err := RunWithTimeout(e, db, 20*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
}

func TestImperativeExecutable(t *testing.T) {
	db := tinyDB(t)
	fn := func(ctx context.Context, db *sqldb.Database) (*sqldb.Result, error) {
		tbl, err := db.Table("t")
		if err != nil {
			return nil, err
		}
		res := &sqldb.Result{Columns: []string{"x"}}
		for _, r := range tbl.Rows {
			if r[0].I > 1 {
				res.Rows = append(res.Rows, sqldb.Row{r[0]})
			}
		}
		return res, nil
	}
	e := NewImperativeExecutable("imp", fn, "select x from t where x > 1")
	res, err := e.Run(context.Background(), db)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowCount() != 2 {
		t.Errorf("got %d rows", res.RowCount())
	}
	if e.GroundTruthSQL() == "" {
		t.Error("ground truth lost")
	}
}

func TestCountingExecutable(t *testing.T) {
	db := tinyDB(t)
	inner := MustSQLExecutable("inner", "select x from t")
	c := &CountingExecutable{Inner: inner}
	for i := 0; i < 3; i++ {
		if _, err := c.Run(context.Background(), db); err != nil {
			t.Fatal(err)
		}
	}
	if c.Invocations() != 3 {
		t.Errorf("wrapper invocations = %d", c.Invocations())
	}
}
