// Package app models the opaque application executable E of the
// paper. An Executable exposes exactly the black-box contract the
// extractor is allowed to rely on: run it against a database and
// observe the result rows, an error, or a timeout — nothing else.
//
// Two concrete kinds are provided, mirroring the paper's evaluation:
//
//   - SQLExecutable holds an obfuscated (XOR-scrambled) SQL byte
//     string, standing in for the encrypted stored procedures /
//     compiled C++ binaries of Section 6.2. The query text is
//     deliberately unreadable at rest and is only decoded inside Run.
//   - ImperativeExecutable wraps a hand-written imperative function
//     (loops, manual joins, in-process sorting) like the Enki, Wilos
//     and RUBiS code of Section 6.3.
package app

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"unmasque/internal/sqldb"
	"unmasque/internal/sqlparser"
)

// Executable is the black-box application E.
//
// Concurrency contract: the extractor's probe scheduler may call Run
// from multiple goroutines at once, each invocation with its own
// database instance. Implementations must therefore be safe for
// concurrent use as long as every call receives a distinct db; they
// may read the database they are handed but must not retain or share
// mutable state across calls without synchronization. Both
// SQLExecutable and ImperativeExecutable satisfy this: the former
// keeps only immutable state (the obfuscated query blob) plus an
// atomic run counter, the latter requires its ImperativeFunc to be a
// pure function of (ctx, db). An executable that cannot meet the
// contract must be wrapped with Serialized (or report itself unsafe
// via ConcurrencyReporter) before being handed to the extractor.
type Executable interface {
	// Name identifies the application (for reports and tests).
	Name() string
	// Run executes the hidden logic against db and returns its
	// result. Implementations must observe ctx cancellation and be
	// safe for concurrent calls with distinct databases (see the
	// interface comment).
	Run(ctx context.Context, db *sqldb.Database) (*sqldb.Result, error)
}

// ConcurrencyReporter is optionally implemented by executables to
// declare whether concurrent Run calls are safe. The extractor checks
// it before fanning probes out over its worker pool: an executable
// reporting false is automatically wrapped in Serialized, so its
// probes still succeed — one at a time — with no extraction-visible
// difference. Executables not implementing the interface are assumed
// safe, per the Executable contract.
type ConcurrencyReporter interface {
	// ConcurrentRunSafe reports whether Run may be invoked from
	// multiple goroutines simultaneously.
	ConcurrentRunSafe() bool
}

// Serialized wraps an executable whose Run is not safe for concurrent
// use, forcing mutual exclusion. The extractor applies it
// automatically to executables whose ConcurrencyReporter returns
// false; applications embedding legacy global state can also wrap
// themselves explicitly.
type Serialized struct {
	mu    sync.Mutex
	Inner Executable
}

// Name implements Executable.
func (e *Serialized) Name() string { return e.Inner.Name() }

// Run implements Executable, admitting one caller at a time.
func (e *Serialized) Run(ctx context.Context, db *sqldb.Database) (*sqldb.Result, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.Inner.Run(ctx, db)
}

// ConcurrentRunSafe implements ConcurrencyReporter: the wrapper makes
// any executable safe.
func (e *Serialized) ConcurrentRunSafe() bool { return true }

// ErrTimeout is returned by RunCtx/RunWithTimeout when the executable
// did not finish within the probe deadline.
var ErrTimeout = errors.New("application execution timed out")

// RunCtx executes e under both the caller's context and a per-run
// deadline. The two expirations are reported differently: the probe
// deadline firing yields ErrTimeout (a legitimate observation — the
// from-clause probe relies on it), while cancellation or deadline
// expiry of the parent ctx yields that context's error, so callers can
// tell an aborted extraction job from a slow probe.
func RunCtx(ctx context.Context, e Executable, db *sqldb.Database, timeout time.Duration) (*sqldb.Result, error) {
	rctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	res, err := e.Run(rctx, db)
	if err != nil && rctx.Err() != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, ErrTimeout
	}
	return res, err
}

// RunWithTimeout executes e with a deadline. The from-clause probe
// uses a short timeout: a missing table produces an immediate error,
// while an unaffected application keeps running and is cut off.
func RunWithTimeout(e Executable, db *sqldb.Database, timeout time.Duration) (*sqldb.Result, error) {
	return RunCtx(context.Background(), e, db, timeout)
}

// obfuscationKey scrambles embedded SQL at rest. The point is not
// cryptographic strength — it is that the query text cannot be found
// by string-scanning the binary or the process image, which is the
// scenario (SQL Shield-style protection) motivating HQE.
var obfuscationKey = []byte("unmasque-hqe-sigmod21")

// Obfuscate scrambles SQL text into an opaque byte string.
func Obfuscate(sql string) []byte {
	out := make([]byte, len(sql))
	for i := 0; i < len(sql); i++ {
		k := obfuscationKey[i%len(obfuscationKey)]
		out[i] = sql[i] ^ k ^ byte(i*131)
	}
	return out
}

// Deobfuscate reverses Obfuscate.
func Deobfuscate(blob []byte) string {
	out := make([]byte, len(blob))
	for i := 0; i < len(blob); i++ {
		k := obfuscationKey[i%len(obfuscationKey)]
		out[i] = blob[i] ^ k ^ byte(i*131)
	}
	return string(out)
}

// SQLExecutable is an application embedding a single hidden SQL
// query in obfuscated form.
type SQLExecutable struct {
	name  string
	blob  []byte
	runs  atomic.Int64
	delay time.Duration
}

// NewSQLExecutable builds an executable hiding the given query. The
// query is validated eagerly (a malformed hidden query is a
// programming error in the workload definition, not an extraction
// scenario).
func NewSQLExecutable(name, sql string) (*SQLExecutable, error) {
	if _, err := sqlparser.Parse(sql); err != nil {
		return nil, err
	}
	return &SQLExecutable{name: name, blob: Obfuscate(sql)}, nil
}

// MustSQLExecutable builds an executable or panics; for statically
// known workload queries. Library code uses NewSQLExecutable and
// propagates the error (lint rule GL001 exempts only Must*-named
// wrappers).
func MustSQLExecutable(name, sql string) *SQLExecutable {
	e, err := NewSQLExecutable(name, sql)
	if err != nil {
		panic(fmt.Sprintf("app: MustSQLExecutable(%q): %v", name, err))
	}
	return e
}

// Name implements Executable.
func (e *SQLExecutable) Name() string { return e.name }

// Run decodes, parses and executes the hidden query.
func (e *SQLExecutable) Run(ctx context.Context, db *sqldb.Database) (*sqldb.Result, error) {
	e.runs.Add(1)
	if e.delay > 0 {
		select {
		case <-time.After(e.delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	stmt, err := sqlparser.Parse(Deobfuscate(e.blob))
	if err != nil {
		return nil, err
	}
	return db.Execute(ctx, stmt)
}

// Invocations reports how many times the application has been run —
// the E-invocation count of Section 6.2's efficiency discussion.
func (e *SQLExecutable) Invocations() int64 { return e.runs.Load() }

// SetStartupDelay adds a fixed per-run delay, simulating application
// startup cost; used by the schema-scaling experiment where probe
// timeouts must beat slow executions.
func (e *SQLExecutable) SetStartupDelay(d time.Duration) { e.delay = d }

// HiddenSQL exposes the embedded query text. It exists ONLY for
// ground-truth verification in tests and experiment reports; the
// extractor must never call it.
func (e *SQLExecutable) HiddenSQL() string { return Deobfuscate(e.blob) }

// ImperativeFunc is the signature of a hidden imperative routine.
type ImperativeFunc func(ctx context.Context, db *sqldb.Database) (*sqldb.Result, error)

// ImperativeExecutable wraps imperative application code, optionally
// carrying the equivalent SQL as ground truth for verification.
type ImperativeExecutable struct {
	name      string
	fn        ImperativeFunc
	groundSQL string
	runs      atomic.Int64
}

// NewImperativeExecutable builds an imperative application.
// groundTruthSQL may be empty when no reference query is known.
func NewImperativeExecutable(name string, fn ImperativeFunc, groundTruthSQL string) *ImperativeExecutable {
	return &ImperativeExecutable{name: name, fn: fn, groundSQL: groundTruthSQL}
}

// Name implements Executable.
func (e *ImperativeExecutable) Name() string { return e.name }

// Run implements Executable.
func (e *ImperativeExecutable) Run(ctx context.Context, db *sqldb.Database) (*sqldb.Result, error) {
	e.runs.Add(1)
	return e.fn(ctx, db)
}

// Invocations reports the number of runs.
func (e *ImperativeExecutable) Invocations() int64 { return e.runs.Load() }

// GroundTruthSQL returns the reference query (may be empty). Tests
// only.
func (e *ImperativeExecutable) GroundTruthSQL() string { return e.groundSQL }

// CountingExecutable wraps any executable and counts invocations;
// the extractor statistics use it for third-party executables.
type CountingExecutable struct {
	Inner Executable
	runs  atomic.Int64
}

// Name implements Executable.
func (e *CountingExecutable) Name() string { return e.Inner.Name() }

// Run implements Executable.
func (e *CountingExecutable) Run(ctx context.Context, db *sqldb.Database) (*sqldb.Result, error) {
	e.runs.Add(1)
	return e.Inner.Run(ctx, db)
}

// Invocations reports the number of runs through this wrapper.
func (e *CountingExecutable) Invocations() int64 { return e.runs.Load() }
