package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// TraceSummary is the outcome of validating a JSONL trace file.
type TraceSummary struct {
	// Spans and Probes count the validated lines of each type.
	Spans  int
	Probes int
	// Hits/Disk/Misses/Bypass/Off/None break the probe events down by
	// cache outcome. Hits + Disk + every executed class (Misses,
	// Bypass, Off, None) equals Probes.
	Hits   int
	Disk   int
	Misses int
	Bypass int
	Off    int
	None   int
	// ByPhase counts probe events per pipeline phase.
	ByPhase map[string]int
	// Apps lists the run headers seen (normally exactly one).
	Apps []string
}

// Executed reports the number of probe events that actually invoked
// the executable (everything except in-memory and disk cache hits).
// For a complete trace this equals the extraction's
// Stats.AppInvocations.
func (s *TraceSummary) Executed() int {
	return s.Misses + s.Bypass + s.Off + s.None
}

func (s *TraceSummary) String() string {
	return fmt.Sprintf("spans=%d probes=%d (executed=%d hits=%d disk=%d misses=%d bypass=%d off=%d none=%d) phases=%d",
		s.Spans, s.Probes, s.Executed(), s.Hits, s.Disk, s.Misses, s.Bypass, s.Off, s.None, len(s.ByPhase))
}

// validCache enumerates the legal cache outcomes.
var validCache = map[string]bool{
	CacheHit: true, CacheDisk: true, CacheMiss: true, CacheBypass: true, CacheOff: true, CacheNone: true,
}

// validKind enumerates the legal probe kinds.
var validKind = map[string]bool{KindExec: true, KindRename: true}

// Validate checks a JSONL trace against the schema of DESIGN.md §8:
// every line is a JSON object with a known "type"; span ids are
// unique, positive and pre-order (every parent id was seen before its
// children, root parent is 0); probe events carry a phase, a legal
// kind and cache outcome, well-formed hex fingerprints/digests, and a
// result exclusively on success (rows/digest) or failure (err).
// The first error is returned with its line number.
func Validate(r io.Reader) (*TraceSummary, error) {
	sum := &TraceSummary{ByPhase: map[string]int{}}
	seenSpans := map[int]bool{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		typ, err := lineType(raw)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		switch typ {
		case TypeRun:
			var h RunHeader
			if err := json.Unmarshal(raw, &h); err != nil {
				return nil, fmt.Errorf("line %d: %w", line, err)
			}
			if h.App == "" {
				return nil, fmt.Errorf("line %d: run header without app", line)
			}
			sum.Apps = append(sum.Apps, h.App)
		case TypeSpan:
			var s SpanEvent
			if err := json.Unmarshal(raw, &s); err != nil {
				return nil, fmt.Errorf("line %d: %w", line, err)
			}
			if err := checkSpan(&s, seenSpans); err != nil {
				return nil, fmt.Errorf("line %d: %w", line, err)
			}
			seenSpans[s.ID] = true
			sum.Spans++
		case TypeProbe:
			var p ProbeEvent
			if err := json.Unmarshal(raw, &p); err != nil {
				return nil, fmt.Errorf("line %d: %w", line, err)
			}
			if err := checkProbe(&p); err != nil {
				return nil, fmt.Errorf("line %d: %w", line, err)
			}
			sum.Probes++
			sum.ByPhase[p.Phase]++
			switch p.Cache {
			case CacheHit:
				sum.Hits++
			case CacheDisk:
				sum.Disk++
			case CacheMiss:
				sum.Misses++
			case CacheBypass:
				sum.Bypass++
			case CacheOff:
				sum.Off++
			case CacheNone:
				sum.None++
			}
		default:
			return nil, fmt.Errorf("line %d: unknown event type %q", line, typ)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return sum, nil
}

func checkSpan(s *SpanEvent, seen map[int]bool) error {
	if s.Name == "" {
		return fmt.Errorf("span without name")
	}
	if s.ID <= 0 {
		return fmt.Errorf("span %q: id %d must be positive", s.Name, s.ID)
	}
	if seen[s.ID] {
		return fmt.Errorf("span %q: duplicate id %d", s.Name, s.ID)
	}
	if s.Parent != 0 && !seen[s.Parent] {
		return fmt.Errorf("span %q: parent %d not seen before child %d (spans must be pre-order)",
			s.Name, s.Parent, s.ID)
	}
	if s.DurUS < 0 || s.StartUS < 0 {
		return fmt.Errorf("span %q: negative timing", s.Name)
	}
	return nil
}

func checkProbe(p *ProbeEvent) error {
	if p.Phase == "" {
		return fmt.Errorf("probe event without phase")
	}
	if !validKind[p.Kind] {
		return fmt.Errorf("probe event with unknown kind %q", p.Kind)
	}
	if !validCache[p.Cache] {
		return fmt.Errorf("probe event with unknown cache outcome %q", p.Cache)
	}
	if p.Kind == KindRename && p.Table == "" {
		return fmt.Errorf("rename probe without table")
	}
	if (p.Cache == CacheHit || p.Cache == CacheDisk) && p.FP == "" {
		return fmt.Errorf("cache hit without fingerprint")
	}
	if !isHex(p.FP) {
		return fmt.Errorf("malformed fingerprint %q", p.FP)
	}
	if !isHex(p.Digest) {
		return fmt.Errorf("malformed digest %q", p.Digest)
	}
	if p.Rows < 0 {
		return fmt.Errorf("negative row count %d", p.Rows)
	}
	if p.Err != "" && p.Digest != "" {
		return fmt.Errorf("probe event carries both an error and a result digest")
	}
	if p.DurUS < 0 || p.TSUS < 0 {
		return fmt.Errorf("negative timing")
	}
	return nil
}

// StreamSummary is the outcome of validating a live trace stream
// (the SSE feed of GET /jobs/{id}/trace/stream, or its captured
// transcript).
type StreamSummary struct {
	// Frames counts every validated frame; Spans/Probes/Jobs break
	// them down by type (run headers are counted in Frames and listed
	// in Apps).
	Frames int
	Spans  int
	Probes int
	Jobs   int
	// OpenSpans counts span frames emitted at span start (Open=true).
	OpenSpans int
	// Apps lists the run headers seen.
	Apps []string
	// Final is the state of the last job frame ("" when the capture
	// was cut before any lifecycle frame); a complete stream ends with
	// a terminal one.
	Final string
}

func (s *StreamSummary) String() string {
	final := s.Final
	if final == "" {
		final = "(none)"
	}
	return fmt.Sprintf("frames=%d spans=%d (open=%d) probes=%d jobs=%d final=%s",
		s.Frames, s.Spans, s.OpenSpans, s.Probes, s.Jobs, final)
}

// validJobState enumerates the lifecycle states a job frame may carry.
var validJobState = map[string]bool{
	"queued": true, "running": true, "done": true, "failed": true, "cancelled": true,
}

// ValidateStream checks a live trace stream against the schema. It
// accepts both raw JSONL and the SSE transcript curl produces
// ("data: {...}" frames; event/id/retry and comment lines are
// skipped). Stream frames differ from trace-file lines in two ways:
// span frames may be live exports (ID 0, Parent 0 — pre-order ids
// exist only in the final file export; such frames may also be open,
// marking span start), and job lifecycle frames (TypeJob) are legal.
// Everything else — probe schema, run headers, pre-order rules for
// id-bearing spans — matches Validate. An empty capture is an error.
func ValidateStream(r io.Reader) (*StreamSummary, error) {
	sum := &StreamSummary{}
	seenSpans := map[int]bool{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 || raw[0] == ':' {
			continue // SSE keep-alive comment or frame separator
		}
		if before, after, ok := bytes.Cut(raw, []byte(":")); ok && !bytes.HasPrefix(raw, []byte("{")) {
			// SSE field line: only data fields carry frames.
			if string(before) != "data" {
				continue
			}
			raw = bytes.TrimSpace(after)
		}
		typ, err := lineType(raw)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		switch typ {
		case TypeRun:
			var h RunHeader
			if err := json.Unmarshal(raw, &h); err != nil {
				return nil, fmt.Errorf("line %d: %w", line, err)
			}
			if h.App == "" {
				return nil, fmt.Errorf("line %d: run header without app", line)
			}
			sum.Apps = append(sum.Apps, h.App)
		case TypeSpan:
			var s SpanEvent
			if err := json.Unmarshal(raw, &s); err != nil {
				return nil, fmt.Errorf("line %d: %w", line, err)
			}
			if s.ID == 0 {
				// Live frame: no pre-order id yet, so no parent link.
				if s.Name == "" {
					return nil, fmt.Errorf("line %d: span without name", line)
				}
				if s.Parent != 0 {
					return nil, fmt.Errorf("line %d: live span %q carries parent %d without an id", line, s.Name, s.Parent)
				}
				if s.DurUS < 0 || s.StartUS < 0 {
					return nil, fmt.Errorf("line %d: span %q: negative timing", line, s.Name)
				}
			} else {
				// Replayed export: full trace-file rules apply.
				if err := checkSpan(&s, seenSpans); err != nil {
					return nil, fmt.Errorf("line %d: %w", line, err)
				}
				seenSpans[s.ID] = true
			}
			if s.Open {
				sum.OpenSpans++
			}
			sum.Spans++
		case TypeProbe:
			var p ProbeEvent
			if err := json.Unmarshal(raw, &p); err != nil {
				return nil, fmt.Errorf("line %d: %w", line, err)
			}
			if err := checkProbe(&p); err != nil {
				return nil, fmt.Errorf("line %d: %w", line, err)
			}
			sum.Probes++
		case TypeJob:
			var j JobEvent
			if err := json.Unmarshal(raw, &j); err != nil {
				return nil, fmt.Errorf("line %d: %w", line, err)
			}
			if !validJobState[j.State] {
				return nil, fmt.Errorf("line %d: job frame with unknown state %q", line, j.State)
			}
			sum.Jobs++
			sum.Final = j.State
		default:
			return nil, fmt.Errorf("line %d: unknown event type %q", line, typ)
		}
		sum.Frames++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if sum.Frames == 0 {
		return nil, fmt.Errorf("empty stream capture")
	}
	return sum, nil
}

// isHex accepts an empty string or an even-length lower-case hex
// string (how fingerprints and digests are rendered).
func isHex(s string) bool {
	if len(s)%2 != 0 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
