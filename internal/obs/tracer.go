package obs

import (
	"sort"
	"sync"
	"time"
)

// Tracer owns one span tree. It is safe for concurrent use: any
// goroutine may start children under any span and end its own spans.
// The zero-value pointer (nil) is a valid no-op tracer, and a nil
// *Span swallows every operation, so instrumented code never branches
// on whether tracing is enabled.
type Tracer struct {
	root *Span

	mu   sync.Mutex
	sink func(SpanEvent)
}

// NewTracer starts a tracer whose root span carries the given name.
func NewTracer(name string) *Tracer {
	t := &Tracer{}
	t.root = newSpan(t, name, SeqAuto)
	return t
}

// SetSink installs a live-export hook: every span emits one SpanEvent
// into the sink the moment it ends (and the moment it starts, with
// Open set), in real completion order. Live events carry ID 0 /
// Parent 0 — deterministic pre-order ids exist only in the final
// Events() export — and their timings are relative to the root span's
// start. The sink runs outside span locks but must still be fast and
// non-blocking; nil uninstalls. Nil-safe on a nil tracer.
func (t *Tracer) SetSink(fn func(SpanEvent)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.sink = fn
	t.mu.Unlock()
}

// emit renders s as a live event and hands it to the sink, if any.
// Called with no span locks held.
func (t *Tracer) emit(s *Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	fn := t.sink
	t.mu.Unlock()
	if fn == nil {
		return
	}
	fn(s.event(0, t.root.start, time.Now()))
}

// Root returns the root span (nil for a nil tracer).
func (t *Tracer) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Events flattens the tree into deterministic SpanEvents: children
// are sorted by (seq, name) and ids assigned pre-order, so the same
// extraction yields the same ids regardless of how its probe spans
// interleaved in time. Spans still open at export time are marked
// Open and given their elapsed-so-far duration.
func (t *Tracer) Events() []SpanEvent {
	if t == nil || t.root == nil {
		return nil
	}
	var out []SpanEvent
	now := time.Now()
	epoch := t.root.start
	var walk func(s *Span, parent int)
	walk = func(s *Span, parent int) {
		ev := s.event(parent, epoch, now)
		ev.ID = len(out) + 1
		out = append(out, ev)
		id := ev.ID
		for _, c := range s.sortedChildren() {
			walk(c, id)
		}
	}
	walk(t.root, 0)
	return out
}

// SeqAuto lets the parent assign the next sequential index to a child
// span. Fan-out sites pass their probe index instead, which is what
// keeps sibling ordering deterministic under concurrency.
const SeqAuto = -1

// Span is one node of the trace tree.
type Span struct {
	tr *Tracer // owning tracer (live-sink emission); nil for orphans

	mu       sync.Mutex
	name     string
	seq      int
	attrs    map[string]string
	err      error
	start    time.Time
	dur      time.Duration
	ended    bool
	children []*Span
	nextSeq  int
}

func newSpan(tr *Tracer, name string, seq int) *Span {
	return &Span{tr: tr, name: name, seq: seq, start: time.Now()}
}

// Child starts a sub-span. seq fixes the child's deterministic
// position among its siblings; SeqAuto takes the parent's next
// sequential slot (only safe when children are started one at a
// time, as pipeline phases are).
func (s *Span) Child(name string, seq int) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	if seq == SeqAuto {
		seq = s.nextSeq
	}
	if seq >= s.nextSeq {
		s.nextSeq = seq + 1
	}
	c := newSpan(s.tr, name, seq)
	s.children = append(s.children, c)
	s.mu.Unlock()
	c.tr.emit(c) // live "span started" frame (Open=true)
	return c
}

// SetAttr attaches one attribute. Attribute values become part of the
// exported trace, so they must be deterministic (no durations or
// pointers) to preserve the byte-identity guarantee.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.attrs == nil {
		s.attrs = map[string]string{}
	}
	s.attrs[k] = v
}

// End closes the span; repeated calls keep the first duration.
func (s *Span) End() { s.EndErr(nil) }

// EndErr closes the span, recording the probe/phase error it ended
// with (nil for success).
func (s *Span) EndErr(err error) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
	s.err = err
	s.mu.Unlock()
	// Emit after unlocking: the sink re-reads the span (event locks it)
	// and must never run under the span lock.
	s.tr.emit(s)
}

// Name returns the span name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Seq returns the span's deterministic sibling index.
func (s *Span) Seq() int {
	if s == nil {
		return 0
	}
	return s.seq
}

// Duration returns the recorded duration (elapsed time for a span
// still open).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		return time.Since(s.start)
	}
	return s.dur
}

// Err returns the error the span ended with, if any.
func (s *Span) Err() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Attr reads one attribute.
func (s *Span) Attr(k string) string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.attrs[k]
}

// Children returns the sub-spans in deterministic (seq, name) order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	return s.sortedChildren()
}

func (s *Span) sortedChildren() []*Span {
	s.mu.Lock()
	kids := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	sort.SliceStable(kids, func(i, j int) bool {
		if kids[i].seq != kids[j].seq {
			return kids[i].seq < kids[j].seq
		}
		return kids[i].name < kids[j].name
	})
	return kids
}

// event renders the span as a flat SpanEvent (id assigned by caller).
func (s *Span) event(parent int, epoch, now time.Time) SpanEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	ev := SpanEvent{
		Type:    TypeSpan,
		Parent:  parent,
		Name:    s.name,
		Seq:     s.seq,
		StartUS: s.start.Sub(epoch).Microseconds(),
	}
	if len(s.attrs) > 0 {
		attrs := make(map[string]string, len(s.attrs))
		for k, v := range s.attrs {
			attrs[k] = v
		}
		ev.Attrs = attrs
	}
	if s.err != nil {
		ev.Err = s.err.Error()
	}
	if s.ended {
		ev.DurUS = s.dur.Microseconds()
	} else {
		ev.DurUS = now.Sub(s.start).Microseconds()
		ev.Open = true
	}
	return ev
}
