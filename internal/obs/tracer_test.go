package obs

import (
	"errors"
	"sync"
	"testing"
)

// TestTracerDeterministicExport: children started out of order (as a
// worker pool would) export sorted by their explicit seq, with
// pre-order ids.
func TestTracerDeterministicExport(t *testing.T) {
	tr := NewTracer("extract")
	phase := tr.Root().Child("filters", SeqAuto)
	// Start probe spans in scrambled arrival order.
	for _, i := range []int{3, 0, 2, 1} {
		p := phase.Child("probe", i)
		p.End()
	}
	phase.End()
	tr.Root().End()

	evs := tr.Events()
	if len(evs) != 6 {
		t.Fatalf("got %d events, want 6", len(evs))
	}
	if evs[0].Name != "extract" || evs[0].ID != 1 || evs[0].Parent != 0 {
		t.Fatalf("root event wrong: %+v", evs[0])
	}
	if evs[1].Name != "filters" || evs[1].Parent != 1 {
		t.Fatalf("phase event wrong: %+v", evs[1])
	}
	for i := 0; i < 4; i++ {
		ev := evs[2+i]
		if ev.Name != "probe" || ev.Seq != i || ev.Parent != evs[1].ID {
			t.Fatalf("probe %d exported out of order: %+v", i, ev)
		}
		if ev.ID != 3+i {
			t.Fatalf("probe %d id %d, want %d (pre-order)", i, ev.ID, 3+i)
		}
	}
}

// TestTracerOpenAndError: an error is recorded on the event; a span
// never ended is exported Open.
func TestTracerOpenAndError(t *testing.T) {
	tr := NewTracer("extract")
	bad := tr.Root().Child("minimizer", SeqAuto)
	bad.SetAttr("tables", "2")
	bad.EndErr(errors.New("probe lost the populated result"))
	open := tr.Root().Child("filters", SeqAuto)
	_ = open // never ended

	evs := tr.Events()
	if evs[1].Err != "probe lost the populated result" {
		t.Errorf("err not exported: %+v", evs[1])
	}
	if evs[1].Attrs["tables"] != "2" {
		t.Errorf("attr not exported: %+v", evs[1])
	}
	if evs[1].Open {
		t.Error("ended span exported Open")
	}
	if !evs[2].Open {
		t.Errorf("unended span not marked Open: %+v", evs[2])
	}
	if !evs[0].Open {
		t.Error("unended root not marked Open")
	}
}

// TestTracerEndIdempotent: the first End wins.
func TestTracerEndIdempotent(t *testing.T) {
	tr := NewTracer("x")
	s := tr.Root().Child("p", SeqAuto)
	s.End()
	d := s.Duration()
	s.EndErr(errors.New("late"))
	if s.Err() != nil {
		t.Error("late EndErr overwrote the recorded outcome")
	}
	if s.Duration() != d {
		t.Error("late End changed the duration")
	}
}

// TestTracerNilSafety: every operation on a nil tracer/span is a
// no-op, so instrumented code need not branch on observability.
func TestTracerNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.Root() != nil || tr.Events() != nil {
		t.Error("nil tracer leaked a span or events")
	}
	var s *Span
	c := s.Child("x", 1)
	if c != nil {
		t.Error("nil span produced a child")
	}
	s.SetAttr("k", "v")
	s.End()
	s.EndErr(errors.New("x"))
	if s.Name() != "" || s.Seq() != 0 || s.Duration() != 0 || s.Err() != nil || s.Attr("k") != "" || s.Children() != nil {
		t.Error("nil span accessors returned non-zero values")
	}
}

// TestTracerConcurrentChildren: concurrent child creation and ending
// must be race-free and lose no spans (run under -race in CI).
func TestTracerConcurrentChildren(t *testing.T) {
	tr := NewTracer("extract")
	phase := tr.Root().Child("probe-storm", SeqAuto)
	var wg sync.WaitGroup
	const n = 64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := phase.Child("probe", i)
			c.SetAttr("i", "x")
			c.End()
		}(i)
	}
	wg.Wait()
	kids := phase.Children()
	if len(kids) != n {
		t.Fatalf("lost spans: %d of %d", len(kids), n)
	}
	for i, k := range kids {
		if k.Seq() != i {
			t.Fatalf("child %d has seq %d; deterministic order broken", i, k.Seq())
		}
	}
}
