package obs

import (
	"strings"
	"testing"
)

func validateStr(t *testing.T, trace string) (*TraceSummary, error) {
	t.Helper()
	return Validate(strings.NewReader(trace))
}

func TestValidateGoodTrace(t *testing.T) {
	trace := `{"type":"run","app":"q7","workers":8,"seed":1}
{"type":"span","id":1,"parent":0,"name":"extract","seq":-1,"start_us":0,"dur_us":10}

{"type":"span","id":2,"parent":1,"name":"filters","seq":0,"start_us":1,"dur_us":5}
{"type":"probe","phase":"filters","phase_seq":4,"kind":"exec","fp":"ab","cache":"miss","digest":"12","rows":1,"worker":1,"probe":0,"seq":0,"ts_us":3,"dur_us":2}
{"type":"probe","phase":"filters","phase_seq":4,"kind":"exec","fp":"ab","cache":"hit","digest":"12","rows":1,"worker":2,"probe":1,"seq":1,"ts_us":4,"dur_us":0}
{"type":"probe","phase":"from-clause","phase_seq":1,"kind":"rename","table":"orders","cache":"none","err":"no such table","worker":0,"probe":0,"seq":2,"ts_us":5,"dur_us":1}
`
	sum, err := validateStr(t, trace)
	if err != nil {
		t.Fatalf("good trace rejected: %v", err)
	}
	if sum.Spans != 2 || sum.Probes != 3 || sum.Hits != 1 || sum.Misses != 1 || sum.None != 1 {
		t.Fatalf("summary wrong: %s", sum)
	}
	if sum.Executed() != 2 {
		t.Fatalf("executed = %d, want 2", sum.Executed())
	}
	if !strings.Contains(sum.String(), "probes=3") {
		t.Errorf("summary string: %s", sum)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := map[string]string{
		"unknown type":       `{"type":"metric"}`,
		"not json":           `]`,
		"header without app": `{"type":"run"}`,
		"span without name":  `{"type":"span","id":1}`,
		"span id zero":       `{"type":"span","id":0,"name":"x"}`,
		"duplicate span id": `{"type":"span","id":1,"name":"x"}
{"type":"span","id":1,"name":"y"}`,
		"orphan parent":        `{"type":"span","id":2,"parent":9,"name":"x"}`,
		"negative span time":   `{"type":"span","id":1,"name":"x","dur_us":-1}`,
		"probe without phase":  `{"type":"probe","kind":"exec","cache":"miss"}`,
		"unknown kind":         `{"type":"probe","phase":"p","kind":"guess","cache":"miss"}`,
		"unknown cache":        `{"type":"probe","phase":"p","kind":"exec","cache":"maybe"}`,
		"rename without table": `{"type":"probe","phase":"p","kind":"rename","cache":"none"}`,
		"hit without fp":       `{"type":"probe","phase":"p","kind":"exec","cache":"hit"}`,
		"odd hex fp":           `{"type":"probe","phase":"p","kind":"exec","cache":"miss","fp":"abc"}`,
		"uppercase digest":     `{"type":"probe","phase":"p","kind":"exec","cache":"miss","digest":"AB"}`,
		"negative rows":        `{"type":"probe","phase":"p","kind":"exec","cache":"miss","rows":-1}`,
		"err and digest":       `{"type":"probe","phase":"p","kind":"exec","cache":"miss","digest":"ab","err":"boom"}`,
		"negative probe time":  `{"type":"probe","phase":"p","kind":"exec","cache":"miss","dur_us":-5}`,
	}
	for name, line := range cases {
		if _, err := validateStr(t, line+"\n"); err == nil {
			t.Errorf("%s: accepted %s", name, line)
		}
	}
}

func TestIsHex(t *testing.T) {
	for s, want := range map[string]bool{
		"": true, "ab": true, "00ff": true,
		"abc": false, "AB": false, "zz": false, "a ": false,
	} {
		if got := isHex(s); got != want {
			t.Errorf("isHex(%q) = %v, want %v", s, got, want)
		}
	}
}
