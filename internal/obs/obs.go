// Package obs is the extraction pipeline's observability layer: a
// span tracer, a probe ledger and a metrics registry, built on the
// standard library only (crypto-free, no OpenTelemetry).
//
// The extractor's correctness story is entirely behavioural — it
// mutates database instances, reruns the hidden executable and folds
// the observations — so debugging a wrong or failed extraction means
// knowing exactly *which probe ran, on what data, and what came
// back*. The three sub-systems answer that at different grains:
//
//   - The Tracer (tracer.go) records a span tree: one span per
//     pipeline phase, one span per scheduled probe, with attributes
//     and error outcomes. Child ordering is deterministic for every
//     worker count: spans carry an explicit sequence index (the probe
//     fan-out index) and are sorted by it when the tree is exported.
//   - The Ledger (ledger.go) records one ProbeEvent per executable
//     invocation or memoization-cache hit: probe kind, the
//     sqldb.Fingerprint of the input database, the result digest and
//     row count, cache outcome, duration and worker id. Written as
//     JSONL in a canonical order, the ledger of an extraction is
//     byte-identical across worker counts once the volatile fields
//     (timings, worker and scheduling indices) are stripped.
//   - The Metrics registry (metrics.go) keeps counters, gauges and
//     latency histograms (probe runs per phase, cache traffic, rows
//     mutated) and can publish itself through expvar for scraping via
//     the standard /debug/vars endpoint.
//
// All record-side entry points are nil-receiver safe, so the pipeline
// instruments unconditionally and pays nothing when observability is
// not requested.
//
// The JSONL trace format (schema in DESIGN.md §8) interleaves three
// event types, discriminated by the "type" field: "run" (one header
// line), "span" and "probe". validate.go checks a trace file against
// the schema.
package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Event types (the "type" field of every JSONL trace line).
const (
	TypeRun   = "run"
	TypeSpan  = "span"
	TypeProbe = "probe"
	// TypeJob appears only in live trace streams (never in trace
	// files): a job lifecycle transition, emitted by the service tier.
	// A terminal job frame is the stream's closing frame.
	TypeJob = "job"
)

// Probe kinds.
const (
	// KindExec is a regular execution of E against a probe database
	// (everything except from-clause table probing).
	KindExec = "exec"
	// KindRename is a from-clause rename probe: E runs against the
	// full instance with one table renamed, under the probe timeout.
	KindRename = "rename"
)

// Cache outcomes of one probe.
const (
	// CacheHit: the probe database's fingerprint matched a completed
	// execution; E was not run.
	CacheHit = "hit"
	// CacheMiss: no prior execution; E ran and the outcome was
	// recorded (timeouts excepted).
	CacheMiss = "miss"
	// CacheBypass: the instance exceeded Config.CacheMaxRows, so E
	// ran without fingerprinting.
	CacheBypass = "bypass"
	// CacheOff: the run cache is disabled for the session.
	CacheOff = "off"
	// CacheNone: the probe path never consults the cache (from-clause
	// rename probes on the full instance without a shared cache).
	CacheNone = "none"
	// CacheDisk: the fingerprint matched an execution persisted in the
	// durable cross-job probe cache (internal/storage); E was not run.
	CacheDisk = "disk"
)

// RunHeader is the first line of a trace file: which application was
// probed and under what scheduling configuration.
type RunHeader struct {
	Type    string `json:"type"` // "run"
	App     string `json:"app"`
	Workers int    `json:"workers,omitempty"`
	Seed    int64  `json:"seed,omitempty"`
}

// JobEvent is one job lifecycle frame of a live trace stream: the
// job's id and its new state ("queued", "running", "done", "failed",
// "cancelled"). It never appears in trace files — Validate rejects
// it; ValidateStream requires a terminal one to close the stream.
type JobEvent struct {
	Type  string `json:"type"` // "job"
	ID    int64  `json:"id,omitempty"`
	State string `json:"state"`
	Err   string `json:"err,omitempty"`
}

// SpanEvent is one flattened span of the trace tree. IDs are assigned
// pre-order over the seq-sorted tree, so they are deterministic for a
// given extraction; the root's parent is 0.
type SpanEvent struct {
	Type   string            `json:"type"` // "span"
	ID     int               `json:"id"`
	Parent int               `json:"parent"`
	Name   string            `json:"name"`
	Seq    int               `json:"seq"`
	Attrs  map[string]string `json:"attrs,omitempty"`
	Err    string            `json:"err,omitempty"`

	// Volatile fields: wall-clock offsets, stripped by Canonical.
	StartUS int64 `json:"start_us"`
	DurUS   int64 `json:"dur_us"`
	// Open marks a span that had not ended when the tree was
	// exported (an aborted extraction); volatile only in the sense
	// that a failed run may produce it.
	Open bool `json:"open,omitempty"`
}

// ProbeEvent is one ledger record: a single executable invocation or
// cache hit.
type ProbeEvent struct {
	Type string `json:"type"` // "probe"
	// Phase is the pipeline phase the probe belongs to; PhaseSeq its
	// position in the pipeline (phases run sequentially, so both are
	// deterministic).
	Phase    string `json:"phase"`
	PhaseSeq int    `json:"phase_seq"`
	// Kind is KindExec or KindRename.
	Kind string `json:"kind"`
	// Table is the renamed table of a KindRename probe.
	Table string `json:"table,omitempty"`
	// FP is the hex sqldb.Fingerprint of the input database; empty
	// when the probe bypassed fingerprinting (large instance, cache
	// off, rename probes without a shared cache).
	FP string `json:"fp,omitempty"`
	// Cache is the memoization outcome (CacheHit, CacheDisk,
	// CacheMiss, CacheBypass, CacheOff, CacheNone).
	Cache string `json:"cache"`
	// Digest is the hex sqldb result digest and Rows the result row
	// count; both absent when the invocation returned an error.
	Digest string `json:"digest,omitempty"`
	Rows   int    `json:"rows"`
	// Err is the error string of a failed invocation. From-clause
	// probes legitimately record missing-table and timeout errors —
	// those outcomes ARE the observation.
	Err string `json:"err,omitempty"`

	// Volatile fields, stripped by Canonical: scheduling artifacts
	// (which pool worker ran the probe, the fan-out index, arrival
	// order) and timings. Everything above is a deterministic
	// function of the workload and configuration; everything below
	// may legally differ between two runs of the same extraction.
	Worker int   `json:"worker"`
	Probe  int   `json:"probe"`
	Seq    int64 `json:"seq"`
	TSUS   int64 `json:"ts_us"`
	DurUS  int64 `json:"dur_us"`
}

// Canonical returns the event with every volatile field zeroed — the
// stability boundary of the ledger's byte-identity guarantee.
func (e ProbeEvent) Canonical() ProbeEvent {
	e.Worker = 0
	e.Probe = 0
	e.Seq = 0
	e.TSUS = 0
	e.DurUS = 0
	return e
}

// Canonical returns the span event with volatile timings zeroed.
func (e SpanEvent) Canonical() SpanEvent {
	e.StartUS = 0
	e.DurUS = 0
	return e
}

// StripVolatile rewrites a JSONL trace so that only stable fields
// remain populated: timings, worker ids and scheduling indices are
// zeroed on every line. Two traces of the same extraction — any
// worker count, any machine — strip to identical bytes. Unknown line
// types are an error (run Validate first for a full schema check).
func StripVolatile(data []byte) ([]byte, error) {
	var out bytes.Buffer
	for i, line := range bytes.Split(data, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		typ, err := lineType(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", i+1, err)
		}
		var canon any
		switch typ {
		case TypeRun:
			var h RunHeader
			if err := json.Unmarshal(line, &h); err != nil {
				return nil, fmt.Errorf("line %d: %w", i+1, err)
			}
			h.Workers = 0 // scheduling configuration, not workload content
			canon = h
		case TypeSpan:
			var s SpanEvent
			if err := json.Unmarshal(line, &s); err != nil {
				return nil, fmt.Errorf("line %d: %w", i+1, err)
			}
			canon = s.Canonical()
		case TypeProbe:
			var p ProbeEvent
			if err := json.Unmarshal(line, &p); err != nil {
				return nil, fmt.Errorf("line %d: %w", i+1, err)
			}
			canon = p.Canonical()
		default:
			return nil, fmt.Errorf("line %d: unknown event type %q", i+1, typ)
		}
		enc, err := json.Marshal(canon)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", i+1, err)
		}
		out.Write(enc)
		out.WriteByte('\n')
	}
	return out.Bytes(), nil
}

// lineType peeks the "type" discriminator of one JSONL line.
func lineType(line []byte) (string, error) {
	var head struct {
		Type string `json:"type"`
	}
	if err := json.Unmarshal(line, &head); err != nil {
		return "", fmt.Errorf("not a JSON object: %w", err)
	}
	return head.Type, nil
}
