package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Ledger accumulates ProbeEvents — one per executable invocation or
// cache hit — and writes them as JSONL in a canonical order. It is
// safe for concurrent Record calls; a nil *Ledger discards events.
//
// Events are buffered rather than streamed so that the on-disk order
// can be made deterministic: probes finish in scheduling order, which
// differs run to run, while the canonical order (sortEvents) is a
// pure function of the workload. The arrival order is preserved in
// each event's volatile Seq/TSUS fields, so offline auditing can
// reconstruct the actual execution timeline by re-sorting.
type Ledger struct {
	mu     sync.Mutex
	events []ProbeEvent
	start  time.Time
	sink   func(ProbeEvent)
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{start: time.Now()}
}

// SetSink installs a live-export hook: every Record also hands the
// stamped event to the sink, in arrival (not canonical) order. The
// sink runs outside the ledger lock; nil uninstalls. Nil-safe.
func (l *Ledger) SetSink(fn func(ProbeEvent)) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.sink = fn
	l.mu.Unlock()
}

// Record appends one event, stamping its arrival order and timestamp.
// The caller fills every other field.
func (l *Ledger) Record(e ProbeEvent) {
	if l == nil {
		return
	}
	e.Type = TypeProbe
	l.mu.Lock()
	e.Seq = int64(len(l.events))
	e.TSUS = time.Since(l.start).Microseconds()
	l.events = append(l.events, e)
	fn := l.sink
	l.mu.Unlock()
	if fn != nil {
		fn(e)
	}
}

// Len reports the number of recorded events.
func (l *Ledger) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Events returns a canonically ordered copy of the recorded events.
func (l *Ledger) Events() []ProbeEvent {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := append([]ProbeEvent(nil), l.events...)
	l.mu.Unlock()
	sortEvents(out)
	return out
}

// WriteJSONL writes the events in canonical order, one JSON object
// per line.
func (l *Ledger) WriteJSONL(w io.Writer) error {
	for _, e := range l.Events() {
		enc, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(enc, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// WriteTrace writes a complete JSONL trace: the run header, the span
// events in their given (pre-order) sequence, then the ledger in
// canonical order. The result passes Validate; spans and ledger may
// each be empty/nil.
func WriteTrace(w io.Writer, h RunHeader, spans []SpanEvent, l *Ledger) error {
	h.Type = TypeRun
	enc := json.NewEncoder(w)
	if err := enc.Encode(h); err != nil {
		return err
	}
	for _, s := range spans {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return l.WriteJSONL(w)
}

// sortEvents orders events by their stable fields only: pipeline
// position first, then probe identity (kind, table, fingerprint),
// then outcome. Ties beyond these fields are events that are
// byte-identical after volatile stripping, so their relative order
// cannot affect the canonical ledger; the stable sort keeps arrival
// order among them.
func sortEvents(events []ProbeEvent) {
	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.PhaseSeq != b.PhaseSeq {
			return a.PhaseSeq < b.PhaseSeq
		}
		if a.Phase != b.Phase {
			return a.Phase < b.Phase
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Table != b.Table {
			return a.Table < b.Table
		}
		if a.FP != b.FP {
			return a.FP < b.FP
		}
		if a.Cache != b.Cache {
			// "miss" sorts before "hit" so a fingerprint's ledger
			// entry group reads execute-then-reuse.
			return cacheRank(a.Cache) < cacheRank(b.Cache)
		}
		if a.Digest != b.Digest {
			return a.Digest < b.Digest
		}
		if a.Rows != b.Rows {
			return a.Rows < b.Rows
		}
		return a.Err < b.Err
	})
}

// cacheRank fixes the canonical order of cache outcomes.
func cacheRank(c string) int {
	switch c {
	case CacheMiss:
		return 0
	case CacheHit:
		return 1
	case CacheBypass:
		return 2
	case CacheOff:
		return 3
	case CacheNone:
		return 4
	default:
		return 5
	}
}
