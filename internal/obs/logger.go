package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Level is the logger's severity scale (an alias of slog.Level so
// callers never import log/slog directly — golint GL009 keeps slog
// construction inside this package).
type Level = slog.Level

// Severity levels.
const (
	LevelDebug Level = slog.LevelDebug
	LevelInfo  Level = slog.LevelInfo
	LevelWarn  Level = slog.LevelWarn
	LevelError Level = slog.LevelError
)

// ParseLevel maps a flag string onto a Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "info":
		return LevelInfo, nil
	case "debug":
		return LevelDebug, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	default:
		return LevelInfo, fmt.Errorf("unknown log level %q (debug|info|warn|error)", s)
	}
}

// Logger is the repository's structured, leveled logger: a thin
// nil-safe wrapper over log/slog's JSON handler. Like the Tracer and
// Ledger, a nil *Logger swallows every call, so instrumented code
// logs unconditionally and observability-off costs nothing.
//
// The deterministic tiers (core, analysis, sqldb) never construct a
// logger themselves — they receive one by injection (core.Config.
// Logger), exactly like Config.Clock, so GL007/GL009 hold and tests
// stay byte-reproducible with logging off. Correlation attributes
// (job_id, phase) are attached by derivation: WithJob/WithPhase
// return child loggers whose every record carries the attr.
type Logger struct {
	s *slog.Logger
}

// NewLogger builds a JSON logger writing records at or above level to
// w. A nil writer returns a nil (no-op) logger.
func NewLogger(w io.Writer, level Level) *Logger {
	if w == nil {
		return nil
	}
	h := slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level})
	return &Logger{s: slog.New(h)}
}

// With derives a logger whose records all carry the given key/value
// attrs (slog conventions: alternating string keys and values).
func (l *Logger) With(args ...any) *Logger {
	if l == nil || l.s == nil {
		return nil
	}
	return &Logger{s: l.s.With(args...)}
}

// WithJob derives the per-job logger: every record carries the job id.
func (l *Logger) WithJob(id int64) *Logger {
	return l.With("job_id", id)
}

// WithPhase derives the per-phase logger used inside the pipeline.
func (l *Logger) WithPhase(phase string) *Logger {
	return l.With("phase", phase)
}

// Enabled reports whether records at the given level would be
// emitted; nil loggers emit nothing.
func (l *Logger) Enabled(level Level) bool {
	if l == nil || l.s == nil {
		return false
	}
	return l.s.Enabled(nil, level)
}

// Debug logs at LevelDebug; nil-safe.
func (l *Logger) Debug(msg string, args ...any) {
	if l != nil && l.s != nil {
		l.s.Debug(msg, args...)
	}
}

// Info logs at LevelInfo; nil-safe.
func (l *Logger) Info(msg string, args ...any) {
	if l != nil && l.s != nil {
		l.s.Info(msg, args...)
	}
}

// Warn logs at LevelWarn; nil-safe.
func (l *Logger) Warn(msg string, args ...any) {
	if l != nil && l.s != nil {
		l.s.Warn(msg, args...)
	}
}

// Error logs at LevelError; nil-safe.
func (l *Logger) Error(msg string, args ...any) {
	if l != nil && l.s != nil {
		l.s.Error(msg, args...)
	}
}
