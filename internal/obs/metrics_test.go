package obs

import (
	"encoding/json"
	"expvar"
	"sync"
	"testing"
)

func TestMetricsCountersAndGauges(t *testing.T) {
	m := NewMetrics()
	m.Counter("probes_total").Add(3)
	m.Counter("probes_total").Add(2) // same instrument, not a new one
	m.Gauge("rows").Set(41)
	m.Gauge("rows").Set(17)
	if got := m.Counter("probes_total").Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if got := m.Gauge("rows").Value(); got != 17 {
		t.Errorf("gauge = %d, want 17", got)
	}
}

func TestMetricsHistogram(t *testing.T) {
	m := NewMetrics()
	h := m.Histogram("probe_latency_ms")
	for _, v := range []float64{0.05, 0.2, 3, 10000} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("count = %d, want 4", h.Count())
	}
	if h.Sum() != 10003.25 {
		t.Errorf("sum = %v", h.Sum())
	}
	snap := h.snapshot()
	counts := snap["counts"].([]int64)
	// 0.05 → bucket 0 (≤0.1); 10000 → overflow bucket.
	if counts[0] != 1 || counts[len(counts)-1] != 1 {
		t.Errorf("bucket assignment wrong: %v", counts)
	}
}

func TestMetricsStringIsValidJSON(t *testing.T) {
	m := NewMetrics()
	m.Counter("a").Add(1)
	m.Gauge("b").Set(2)
	m.Histogram("c").Observe(1)
	var decoded map[string]any
	if err := json.Unmarshal([]byte(m.String()), &decoded); err != nil {
		t.Fatalf("String() is not JSON: %v", err)
	}
	for _, k := range []string{"a", "b", "c"} {
		if _, ok := decoded[k]; !ok {
			t.Errorf("key %q missing from %s", k, m.String())
		}
	}
}

func TestMetricsPublish(t *testing.T) {
	m := NewMetrics()
	m.Counter("x").Add(9)
	m.Publish("unmasque_test_metrics")
	m.Publish("unmasque_test_metrics") // duplicate must not panic
	v := expvar.Get("unmasque_test_metrics")
	if v == nil {
		t.Fatal("metrics not published")
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(v.String()), &decoded); err != nil {
		t.Fatalf("published var is not JSON: %v", err)
	}
	if decoded["x"] != float64(9) {
		t.Errorf("published x = %v", decoded["x"])
	}
}

func TestMetricsNilSafety(t *testing.T) {
	var m *Metrics
	m.Counter("a").Add(1)
	m.Gauge("b").Set(1)
	m.Histogram("c").Observe(1)
	m.Publish("nope")
	if m.Counter("a").Value() != 0 || m.Gauge("b").Value() != 0 {
		t.Error("nil registry returned live instruments")
	}
	if m.Histogram("c").Count() != 0 || m.Histogram("c").Sum() != 0 {
		t.Error("nil histogram retained observations")
	}
	if m.Snapshot() != nil || m.String() != "{}" {
		t.Error("nil registry snapshot not empty")
	}
}

func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				m.Counter("n").Add(1)
				m.Histogram("h").Observe(1)
				m.Gauge("g").Set(int64(j))
			}
		}()
	}
	wg.Wait()
	if m.Counter("n").Value() != 800 || m.Histogram("h").Count() != 800 {
		t.Fatalf("lost updates: n=%d h=%d", m.Counter("n").Value(), m.Histogram("h").Count())
	}
}
