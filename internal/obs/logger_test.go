package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestLoggerJSONRecords(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, LevelDebug)
	log.Info("job started", "job_id", int64(7), "app", "tpch/Q3")
	log.Debug("probe", "n", 1)
	log.Warn("slow", "ms", 12.5)
	log.Error("failed", "err", "boom")

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 records, got %d: %q", len(lines), buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("record not JSON: %v", err)
	}
	if rec["msg"] != "job started" || rec["job_id"] != float64(7) || rec["app"] != "tpch/Q3" {
		t.Errorf("unexpected record: %v", rec)
	}
	if rec["level"] != "INFO" {
		t.Errorf("level = %v", rec["level"])
	}
}

func TestLoggerLevelFiltering(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, LevelWarn)
	log.Debug("hidden")
	log.Info("hidden")
	log.Warn("visible")
	if got := strings.Count(buf.String(), "\n"); got != 1 {
		t.Fatalf("expected 1 record at warn level, got %d", got)
	}
	if !log.Enabled(LevelError) || log.Enabled(LevelInfo) {
		t.Error("Enabled does not reflect the configured level")
	}
}

func TestLoggerCorrelationAttrs(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, LevelInfo).WithJob(42).WithPhase("filters")
	log.Info("probe batch", "n", 3)
	var rec map[string]any
	if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &rec); err != nil {
		t.Fatalf("record not JSON: %v", err)
	}
	if rec["job_id"] != float64(42) || rec["phase"] != "filters" {
		t.Errorf("correlation attrs missing: %v", rec)
	}
}

func TestLoggerNilSafety(t *testing.T) {
	var log *Logger
	log.Info("nothing")
	log.Debug("nothing")
	log.Warn("nothing")
	log.Error("nothing")
	if log.Enabled(LevelError) {
		t.Error("nil logger reports enabled")
	}
	if d := log.With("k", "v"); d != nil {
		t.Error("With on nil logger must stay nil")
	}
	if d := log.WithJob(1).WithPhase("x"); d != nil {
		t.Error("derivations of nil logger must stay nil")
	}
	if NewLogger(nil, LevelInfo) != nil {
		t.Error("NewLogger(nil) must return the no-op logger")
	}
}

func TestParseLevel(t *testing.T) {
	cases := map[string]Level{
		"": LevelInfo, "info": LevelInfo, "debug": LevelDebug,
		"warn": LevelWarn, "warning": LevelWarn, "error": LevelError,
		"  Error ": LevelError,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted an unknown level")
	}
}
