package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestTracerSinkEmitsStartAndEnd(t *testing.T) {
	tr := NewTracer("extract")
	var mu sync.Mutex
	var got []SpanEvent
	tr.SetSink(func(e SpanEvent) {
		mu.Lock()
		got = append(got, e)
		mu.Unlock()
	})
	phase := tr.Root().Child("filters", SeqAuto)
	probe := phase.Child("probe", 3)
	probe.End()
	phase.End()
	tr.Root().End()

	mu.Lock()
	defer mu.Unlock()
	// filters open, probe open, probe end, filters end, root end.
	if len(got) != 5 {
		t.Fatalf("expected 5 live events, got %d: %+v", len(got), got)
	}
	if !got[0].Open || got[0].Name != "filters" {
		t.Errorf("first event should be open filters span: %+v", got[0])
	}
	if got[2].Open || got[2].Name != "probe" || got[2].Seq != 3 {
		t.Errorf("third event should be closed probe span: %+v", got[2])
	}
	for i, e := range got {
		if e.ID != 0 || e.Parent != 0 {
			t.Errorf("live event %d carries export ids: %+v", i, e)
		}
		if e.Type != TypeSpan {
			t.Errorf("live event %d has type %q", i, e.Type)
		}
	}
}

func TestTracerSinkDoesNotAffectExport(t *testing.T) {
	tr := NewTracer("extract")
	tr.SetSink(func(SpanEvent) {})
	tr.Root().Child("a", SeqAuto).End()
	tr.Root().End()
	events := tr.Events()
	if len(events) != 2 || events[0].ID != 1 || events[1].ID != 2 {
		t.Fatalf("export ids disturbed by sink: %+v", events)
	}
}

func TestTracerSinkNilSafety(t *testing.T) {
	var tr *Tracer
	tr.SetSink(func(SpanEvent) { t.Error("sink on nil tracer fired") })
	tr.Root().Child("x", SeqAuto).End()
}

func TestTracerSinkEndIdempotent(t *testing.T) {
	tr := NewTracer("extract")
	n := 0
	tr.SetSink(func(SpanEvent) { n++ })
	s := tr.Root().Child("a", SeqAuto)
	s.End()
	s.End()
	s.EndErr(nil)
	if n != 2 { // one open frame + one end frame
		t.Fatalf("repeated End emitted %d events, want 2", n)
	}
}

func TestLedgerSink(t *testing.T) {
	l := NewLedger()
	var got []ProbeEvent
	l.SetSink(func(e ProbeEvent) { got = append(got, e) })
	l.Record(ProbeEvent{Phase: "filters", Kind: KindExec, Cache: CacheMiss})
	l.Record(ProbeEvent{Phase: "filters", Kind: KindExec, Cache: CacheHit, FP: "ab"})
	if len(got) != 2 {
		t.Fatalf("sink saw %d events, want 2", len(got))
	}
	if got[0].Type != TypeProbe || got[0].Seq != 0 || got[1].Seq != 1 {
		t.Errorf("sink events not stamped in arrival order: %+v", got)
	}
	if l.Len() != 2 {
		t.Errorf("ledger lost events: len=%d", l.Len())
	}
	l.SetSink(nil)
	l.Record(ProbeEvent{Phase: "filters", Kind: KindExec, Cache: CacheMiss})
	if len(got) != 2 {
		t.Error("uninstalled sink still fired")
	}
	var nilLedger *Ledger
	nilLedger.SetSink(func(ProbeEvent) { t.Error("sink on nil ledger fired") })
	nilLedger.Record(ProbeEvent{})
}

func TestMetricsExportTyped(t *testing.T) {
	m := NewMetrics()
	m.Counter("probes_total").Add(5)
	m.Gauge("queue_depth").Set(3)
	m.Histogram("probe_latency_ms").Observe(1.5)
	snap := m.Export()
	if snap.Counters["probes_total"] != 5 {
		t.Errorf("counter lost: %+v", snap.Counters)
	}
	if snap.Gauges["queue_depth"] != 3 {
		t.Errorf("gauge lost: %+v", snap.Gauges)
	}
	h, ok := snap.Histograms["probe_latency_ms"]
	if !ok || h.Count != 1 || h.Sum != 1.5 {
		t.Errorf("histogram snapshot wrong: %+v", h)
	}
	if len(h.Bounds)+1 != len(h.Counts) {
		t.Errorf("snapshot bucket shape: %d bounds, %d counts", len(h.Bounds), len(h.Counts))
	}
	// Counters and gauges must stay distinguishable (the prom encoder
	// relies on it) even when Snapshot() flattens them.
	var nilM *Metrics
	empty := nilM.Export()
	if empty.Counters == nil || empty.Gauges == nil || empty.Histograms == nil {
		t.Error("nil registry must export empty, non-nil maps")
	}
}

// TestHistogramQuantileBucketBoundaries pins the quantile math at
// bucket boundaries — the regression guard for unifying the service
// latency quantiles onto obs.Histogram.
func TestHistogramQuantileBucketBoundaries(t *testing.T) {
	m := NewMetrics()
	h := m.Histogram("lat")
	// DefaultLatencyBuckets start 0.1, 0.25, 0.5, 1, ...
	// Fill exactly one bucket: every observation in (0.25, 0.5].
	for i := 0; i < 100; i++ {
		h.Observe(0.3)
	}
	// All mass in one bucket: every quantile interpolates within
	// (0.25, 0.5]; q=1 must land exactly on the upper bound.
	if got := h.Quantile(1); got != 0.5 {
		t.Errorf("q=1 = %v, want upper bound 0.5", got)
	}
	if got := h.Quantile(0.5); got <= 0.25 || got > 0.5 {
		t.Errorf("q=0.5 = %v, want within (0.25, 0.5]", got)
	}
	// A value exactly on a bound counts into that bound's bucket
	// (le semantics: v > bound moves to the next bucket).
	h2 := m.Histogram("lat2")
	h2.Observe(0.25)
	if got := h2.Quantile(1); got != 0.25 {
		t.Errorf("boundary observation 0.25: q=1 = %v, want 0.25", got)
	}
	// Observations beyond the last bound cap at the last bound.
	h3 := m.Histogram("lat3")
	h3.Observe(999999)
	last := DefaultLatencyBuckets[len(DefaultLatencyBuckets)-1]
	if got := h3.Quantile(0.99); got != last {
		t.Errorf("overflow observation: q=0.99 = %v, want cap %v", got, last)
	}
	// Two buckets, exact split: p50 ends at the first bucket's upper
	// bound, p100 at the second's.
	h4 := m.Histogram("lat4")
	for i := 0; i < 10; i++ {
		h4.Observe(0.05) // first bucket (le 0.1)
		h4.Observe(0.2)  // second bucket (le 0.25)
	}
	if got := h4.Quantile(0.5); got != 0.1 {
		t.Errorf("even split: q=0.5 = %v, want first upper bound 0.1", got)
	}
	if got := h4.Quantile(1); got != 0.25 {
		t.Errorf("even split: q=1 = %v, want second upper bound 0.25", got)
	}
}

func TestValidateStreamAcceptsLiveFrames(t *testing.T) {
	var b bytes.Buffer
	b.WriteString(`{"type":"run","app":"tpch/Q3","workers":2}` + "\n")
	b.WriteString(`{"type":"span","name":"filters","seq":1,"start_us":10,"dur_us":0,"open":true}` + "\n")
	b.WriteString(`{"type":"probe","phase":"filters","phase_seq":4,"kind":"exec","cache":"miss","digest":"ab","rows":1}` + "\n")
	b.WriteString(`{"type":"span","name":"filters","seq":1,"start_us":10,"dur_us":300}` + "\n")
	b.WriteString(`{"type":"job","id":7,"state":"done"}` + "\n")
	sum, err := ValidateStream(&b)
	if err != nil {
		t.Fatalf("valid stream rejected: %v", err)
	}
	if sum.Frames != 5 || sum.Spans != 2 || sum.OpenSpans != 1 || sum.Probes != 1 || sum.Jobs != 1 {
		t.Errorf("summary wrong: %+v", sum)
	}
	if sum.Final != "done" || len(sum.Apps) != 1 {
		t.Errorf("summary wrong: %+v", sum)
	}
	if !strings.Contains(sum.String(), "final=done") {
		t.Errorf("String() = %q", sum.String())
	}
}

func TestValidateStreamAcceptsSSETranscript(t *testing.T) {
	sse := "data: {\"type\":\"run\",\"app\":\"x\"}\n" +
		"\n" +
		": keep-alive\n" +
		"data: {\"type\":\"job\",\"state\":\"running\"}\n" +
		"\n" +
		"data: {\"type\":\"job\",\"state\":\"done\"}\n\n"
	sum, err := ValidateStream(strings.NewReader(sse))
	if err != nil {
		t.Fatalf("SSE transcript rejected: %v", err)
	}
	if sum.Frames != 3 || sum.Jobs != 2 || sum.Final != "done" {
		t.Errorf("summary wrong: %+v", sum)
	}
}

func TestValidateStreamRejections(t *testing.T) {
	cases := map[string]string{
		"empty capture":         "",
		"unknown type":          `{"type":"mystery"}`,
		"live span with parent": `{"type":"span","name":"a","parent":3}`,
		"span without name":     `{"type":"span"}`,
		"bad job state":         `{"type":"job","state":"zombie"}`,
		"bad probe":             `{"type":"probe","phase":"p","kind":"nope","cache":"miss"}`,
		"exported dup id":       `{"type":"span","id":1,"name":"a"}` + "\n" + `{"type":"span","id":1,"name":"b"}`,
		"negative timing":       `{"type":"span","name":"a","dur_us":-1}`,
	}
	for name, in := range cases {
		if _, err := ValidateStream(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Exported (id-bearing) spans still follow pre-order rules.
	good := `{"type":"span","id":1,"name":"root"}` + "\n" + `{"type":"span","id":2,"parent":1,"name":"child"}`
	if _, err := ValidateStream(strings.NewReader(good)); err != nil {
		t.Errorf("pre-order exported spans rejected: %v", err)
	}
}
