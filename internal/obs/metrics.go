package obs

import (
	"encoding/json"
	"expvar"
	"sync"
	"sync/atomic"
)

// Metrics is a small process-local registry of counters, gauges and
// histograms. All operations are safe for concurrent use, and a nil
// *Metrics (observability off) swallows every call, instrument sites
// included, so the pipeline records unconditionally.
//
// The registry serializes to JSON with sorted keys (String), which
// makes it directly publishable through the standard expvar endpoint
// (Publish) without any third-party client library.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns (creating if needed) the named counter. Nil-safe:
// a nil registry returns a nil counter, whose methods no-op.
func (m *Metrics) Counter(name string) *Counter {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.counters[name]
	if !ok {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (m *Metrics) Gauge(name string) *Gauge {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.gauges[name]
	if !ok {
		g = &Gauge{}
		m.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram. The
// default buckets target probe latencies in milliseconds.
func (m *Metrics) Histogram(name string) *Histogram {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.hists[name]
	if !ok {
		h = newHistogram(DefaultLatencyBuckets)
		m.hists[name] = h
	}
	return h
}

// Snapshot renders the registry as a plain map: counters and gauges
// by value, histograms as {buckets, counts, count, sum_ms}.
func (m *Metrics) Snapshot() map[string]any {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := map[string]any{}
	for name, c := range m.counters {
		out[name] = c.Value()
	}
	for name, g := range m.gauges {
		out[name] = g.Value()
	}
	for name, h := range m.hists {
		out[name] = h.snapshot()
	}
	return out
}

// HistogramSnapshot is the typed point-in-time state of one
// histogram: bucket upper bounds, per-bucket (non-cumulative) counts
// with the overflow bucket last, and the observation count and sum.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []int64
	Count  int64
	Sum    float64
}

// RegistrySnapshot is a typed point-in-time copy of the registry.
// Unlike Snapshot's generic map — which renders counters and gauges
// indistinguishably — it preserves the metric kinds, which exposition
// formats with per-family type declarations (Prometheus TYPE lines)
// need.
type RegistrySnapshot struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Histograms map[string]HistogramSnapshot
}

// Export returns the typed registry snapshot; nil registries export
// empty (non-nil) maps so encoders need no nil checks.
func (m *Metrics) Export() RegistrySnapshot {
	out := RegistrySnapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if m == nil {
		return out
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, c := range m.counters {
		out.Counters[name] = c.Value()
	}
	for name, g := range m.gauges {
		out.Gauges[name] = g.Value()
	}
	for name, h := range m.hists {
		out.Histograms[name] = h.Snapshot()
	}
	return out
}

// String renders the snapshot as JSON with deterministically sorted
// keys; it implements expvar.Var.
func (m *Metrics) String() string {
	if m == nil {
		return "{}"
	}
	enc, err := json.Marshal(m.Snapshot())
	if err != nil {
		return "{}"
	}
	return string(enc)
}

// Publish registers the registry under the given expvar name, making
// it scrapeable at /debug/vars. Publishing the same name twice panics
// in expvar, so Publish recovers and keeps the first registration.
func (m *Metrics) Publish(name string) {
	if m == nil {
		return
	}
	defer func() { _ = recover() }()
	expvar.Publish(name, m)
}

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter; nil-safe.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value reads the counter; nil-safe.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a set-to-current-value metric.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value; nil-safe.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Value reads the gauge; nil-safe.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefaultLatencyBuckets are the histogram bucket upper bounds in
// milliseconds (the last bucket is unbounded).
var DefaultLatencyBuckets = []float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 5000}

// Histogram counts observations into fixed buckets and tracks their
// count and sum.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64
	n      int64
	sum    float64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

// Observe records one value (latencies: milliseconds); nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.n++
	h.sum += v
}

// Quantile estimates the q-quantile (q in [0,1]) of the recorded
// observations from the bucket counts: the upper bound of the bucket
// the target rank falls in, linearly interpolated within the bucket.
// Observations beyond the last bound report the last bound (the
// histogram does not track a maximum). Zero observations — or a nil
// histogram — report 0. The estimate is what the service layer
// publishes as p50/p99 job latency.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.n)
	var cum float64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			if i >= len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (target - cum) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum = next
	}
	return h.bounds[len(h.bounds)-1]
}

// Count reports the number of observations; nil-safe.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Sum reports the sum of observations; nil-safe.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Snapshot copies the histogram state; nil-safe (zero snapshot).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]int64(nil), h.counts...),
		Count:  h.n,
		Sum:    h.sum,
	}
}

func (h *Histogram) snapshot() map[string]any {
	h.mu.Lock()
	defer h.mu.Unlock()
	return map[string]any{
		"buckets": append([]float64(nil), h.bounds...),
		"counts":  append([]int64(nil), h.counts...),
		"count":   h.n,
		"sum_ms":  h.sum,
	}
}
