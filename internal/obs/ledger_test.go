package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// TestLedgerCanonicalOrder: the exported order is a pure function of
// the stable fields, not of arrival order; within one fingerprint the
// miss sorts before its hits.
func TestLedgerCanonicalOrder(t *testing.T) {
	l := NewLedger()
	// Arrival order deliberately scrambled relative to canonical.
	l.Record(ProbeEvent{Phase: "filters", PhaseSeq: 4, Kind: KindExec, FP: "ab", Cache: CacheHit, Worker: 2})
	l.Record(ProbeEvent{Phase: "from-clause", PhaseSeq: 1, Kind: KindRename, Table: "orders", Cache: CacheNone})
	l.Record(ProbeEvent{Phase: "filters", PhaseSeq: 4, Kind: KindExec, FP: "ab", Cache: CacheMiss, Worker: 1})
	l.Record(ProbeEvent{Phase: "filters", PhaseSeq: 4, Kind: KindExec, FP: "aa", Cache: CacheMiss})
	l.Record(ProbeEvent{Phase: "from-clause", PhaseSeq: 1, Kind: KindRename, Table: "nation", Cache: CacheNone})

	evs := l.Events()
	if l.Len() != 5 || len(evs) != 5 {
		t.Fatalf("len = %d/%d, want 5", l.Len(), len(evs))
	}
	got := make([]string, len(evs))
	for i, e := range evs {
		got[i] = e.Phase + "/" + e.Table + e.FP + "/" + e.Cache
	}
	want := []string{
		"from-clause/nation/none",
		"from-clause/orders/none",
		"filters/aa/miss",
		"filters/ab/miss", // miss before hit within one fingerprint
		"filters/ab/hit",
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("canonical order wrong at %d:\ngot  %v\nwant %v", i, got, want)
		}
	}
	// Arrival order survives in the volatile Seq stamps.
	if evs[4].Seq != 0 || evs[2].Seq != 3 {
		t.Errorf("arrival stamps wrong: hit.Seq=%d aa.Seq=%d", evs[4].Seq, evs[2].Seq)
	}
}

// TestLedgerWriteAndStrip: WriteJSONL output validates; stripping
// zeroes exactly the volatile fields so two scrambled recordings of
// the same workload strip to identical bytes.
func TestLedgerWriteAndStrip(t *testing.T) {
	mk := func(order []int) []byte {
		events := []ProbeEvent{
			{Phase: "filters", PhaseSeq: 4, Kind: KindExec, FP: "ab", Cache: CacheMiss, Digest: "cd", Rows: 1},
			{Phase: "filters", PhaseSeq: 4, Kind: KindExec, FP: "ab", Cache: CacheHit, Digest: "cd", Rows: 1},
			{Phase: "filters", PhaseSeq: 4, Kind: KindExec, FP: "ff", Cache: CacheMiss, Err: "boom"},
		}
		l := NewLedger()
		for _, i := range order {
			e := events[i]
			e.Worker = i + 1 // scheduling noise
			e.DurUS = int64(100 * (i + 1))
			l.Record(e)
		}
		var buf bytes.Buffer
		if err := l.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a := mk([]int{0, 1, 2})
	b := mk([]int{2, 1, 0})

	if bytes.Equal(a, b) {
		t.Fatal("raw ledgers compare equal; volatile stamps missing from the fixture")
	}
	sa, err := StripVolatile(a)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := StripVolatile(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sa, sb) {
		t.Fatalf("stripped ledgers differ:\n%s\nvs\n%s", sa, sb)
	}
	if strings.Contains(string(sa), `"worker":1`) || strings.Contains(string(sa), `"dur_us":100`) {
		t.Error("volatile fields survived stripping")
	}
}

// TestStripVolatileRejectsGarbage: unknown types and non-JSON lines
// are errors, not silently passed through.
func TestStripVolatileRejectsGarbage(t *testing.T) {
	if _, err := StripVolatile([]byte(`{"type":"mystery"}`)); err == nil {
		t.Error("unknown event type accepted")
	}
	if _, err := StripVolatile([]byte(`not json`)); err == nil {
		t.Error("non-JSON line accepted")
	}
	// The run header's workers field is scheduling configuration and
	// must strip away.
	out, err := StripVolatile([]byte(`{"type":"run","app":"q1","workers":8}`))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(out), "workers") {
		t.Errorf("workers survived stripping: %s", out)
	}
}

// TestLedgerConcurrentRecord: concurrent records are all retained
// (run under -race in CI).
func TestLedgerConcurrentRecord(t *testing.T) {
	l := NewLedger()
	var wg sync.WaitGroup
	const n = 200
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			l.Record(ProbeEvent{Phase: "p", PhaseSeq: 1, Kind: KindExec, Cache: CacheOff, Worker: i})
		}(i)
	}
	wg.Wait()
	if l.Len() != n {
		t.Fatalf("lost events: %d of %d", l.Len(), n)
	}
	// Arrival stamps are a permutation of 0..n-1.
	seen := map[int64]bool{}
	for _, e := range l.Events() {
		seen[e.Seq] = true
	}
	if len(seen) != n {
		t.Fatalf("arrival stamps collide: %d distinct of %d", len(seen), n)
	}
}

// TestLedgerNilSafety: a nil ledger swallows records.
func TestLedgerNilSafety(t *testing.T) {
	var l *Ledger
	l.Record(ProbeEvent{Phase: "p"})
	if l.Len() != 0 || l.Events() != nil {
		t.Error("nil ledger retained state")
	}
	if err := l.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Errorf("nil ledger write: %v", err)
	}
}

// TestWriteTraceValidates: a full trace (header + spans + ledger)
// passes the schema validator and its summary counts line up.
func TestWriteTraceValidates(t *testing.T) {
	tr := NewTracer("extract")
	ph := tr.Root().Child("from-clause", SeqAuto)
	ph.Child("probe", 0).End()
	ph.End()
	tr.Root().End()

	l := NewLedger()
	l.Record(ProbeEvent{Phase: "from-clause", PhaseSeq: 1, Kind: KindRename, Table: "t", Cache: CacheNone, Err: "no such table"})
	l.Record(ProbeEvent{Phase: "filters", PhaseSeq: 2, Kind: KindExec, FP: "ab", Cache: CacheMiss, Digest: "cd", Rows: 2})
	l.Record(ProbeEvent{Phase: "filters", PhaseSeq: 2, Kind: KindExec, FP: "ab", Cache: CacheHit, Digest: "cd", Rows: 2})

	var buf bytes.Buffer
	if err := WriteTrace(&buf, RunHeader{App: "q1", Workers: 4, Seed: 1}, tr.Events(), l); err != nil {
		t.Fatal(err)
	}
	sum, err := Validate(&buf)
	if err != nil {
		t.Fatalf("trace does not validate: %v", err)
	}
	if sum.Spans != 3 || sum.Probes != 3 || sum.Hits != 1 || sum.Executed() != 2 {
		t.Fatalf("summary wrong: %s", sum)
	}
	if len(sum.Apps) != 1 || sum.Apps[0] != "q1" {
		t.Fatalf("apps wrong: %v", sum.Apps)
	}
	if sum.ByPhase["filters"] != 2 {
		t.Fatalf("phase counts wrong: %v", sum.ByPhase)
	}
}
