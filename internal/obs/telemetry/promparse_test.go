package telemetry

import (
	"strings"
	"testing"
)

func TestParsePromTextLabelsAndTimestamps(t *testing.T) {
	in := `# HELP http_requests_total The total number of HTTP requests.
# TYPE http_requests_total counter
http_requests_total{method="post",code="200"} 1027 1395066363000
http_requests_total{method="post",code="400"} 3 1395066363000
# TYPE msdos_file_access_time_seconds untyped
msdos_file_access_time_seconds{path="C:\\DIR\\FILE.TXT",error="Cannot find file:\n\"FILE.TXT\""} 1.458255915e9
`
	fams, err := ParsePromText(strings.NewReader(in))
	if err != nil {
		t.Fatalf("spec example rejected: %v", err)
	}
	if len(fams) != 2 {
		t.Fatalf("expected 2 families, got %d", len(fams))
	}
	if fams[0].Name != "http_requests_total" || len(fams[0].Samples) != 2 {
		t.Errorf("family 0 wrong: %+v", fams[0])
	}
	if fams[0].Samples[0].Value != 1027 {
		t.Errorf("value wrong: %+v", fams[0].Samples[0])
	}
	esc := fams[1].Samples[0].Labels
	if esc["path"] != `C:\DIR\FILE.TXT` {
		t.Errorf("backslash escape: %q", esc["path"])
	}
	if esc["error"] != "Cannot find file:\n\"FILE.TXT\"" {
		t.Errorf("newline/quote escape: %q", esc["error"])
	}
}

func TestParsePromTextRejections(t *testing.T) {
	cases := map[string]string{
		"sample without TYPE":  "orphan_metric 1\n",
		"malformed TYPE":       "# TYPE too few\n",
		"unknown type":         "# TYPE x sparkline\nx 1\n",
		"duplicate TYPE":       "# TYPE x counter\n# TYPE x counter\nx 1\n",
		"bad metric name":      "# TYPE 9x counter\n9x 1\n",
		"bad value":            "# TYPE x counter\nx one\n",
		"duplicate series":     "# TYPE x counter\nx{a=\"1\"} 1\nx{a=\"1\"} 2\n",
		"unterminated labels":  "# TYPE x counter\nx{a=\"1\" 2\n",
		"unquoted label value": "# TYPE x counter\nx{a=1} 2\n",
		"bad escape":           "# TYPE x counter\nx{a=\"\\t\"} 2\n",
		"duplicate label":      "# TYPE x counter\nx{a=\"1\",a=\"2\"} 2\n",
		"missing +Inf": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"non-cumulative buckets": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"buckets out of order": "# TYPE h histogram\n" +
			"h_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",
		"count mismatch": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 2\n",
		"missing sum": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
		"malformed le": "# TYPE h histogram\n" +
			"h_bucket{le=\"wide\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",
		"stray histogram series": "# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\nh_quantile 3\n",
	}
	for name, in := range cases {
		if _, err := ParsePromText(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParsePromTextEmptyIsValid(t *testing.T) {
	fams, err := ParsePromText(strings.NewReader(""))
	if err != nil || len(fams) != 0 {
		t.Errorf("empty document: %v, %v", fams, err)
	}
}

func TestParsePromTextHistogramPerLabelSet(t *testing.T) {
	in := "# TYPE h histogram\n" +
		"h_bucket{phase=\"a\",le=\"1\"} 1\nh_bucket{phase=\"a\",le=\"+Inf\"} 2\nh_sum{phase=\"a\"} 3\nh_count{phase=\"a\"} 2\n" +
		"h_bucket{phase=\"b\",le=\"1\"} 4\nh_bucket{phase=\"b\",le=\"+Inf\"} 4\nh_sum{phase=\"b\"} 2\nh_count{phase=\"b\"} 4\n"
	if _, err := ParsePromText(strings.NewReader(in)); err != nil {
		t.Errorf("independent label sets rejected: %v", err)
	}
}
