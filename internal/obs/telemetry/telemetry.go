// Package telemetry turns the obs layer's in-process records into
// operable, external-facing telemetry:
//
//   - prom.go renders an obs.Metrics registry in the Prometheus text
//     exposition format (0.0.4): counters, gauges and histograms with
//     cumulative buckets, _sum/_count series and deterministic
//     family/label ordering, so the daemon's /metrics endpoint is
//     directly scrapeable.
//   - promparse.go is the matching parser/validator — CI scrapes the
//     live daemon and round-trips the text through it, so a format
//     regression fails the gate rather than a production scrape.
//   - catapult.go exports a recorded trace (run header, span tree,
//     probe ledger) as Chrome trace-event JSON, openable in
//     about://tracing or Perfetto: phases and probes become complete
//     events on per-worker tracks.
//   - stream.go is the live-trace broker behind the service's
//     GET /jobs/{id}/trace/stream SSE endpoint: a replay buffer plus
//     subscriber fan-out fed by the obs Tracer/Ledger sink hooks, so
//     a running extraction can be tailed as it happens.
//
// Like the rest of obs, everything here is standard library only.
package telemetry
