package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"unmasque/internal/obs"
)

// PromContentType is the Content-Type of the text exposition format
// the encoder emits.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promPrefix namespaces every exported family, per Prometheus naming
// conventions (one prefix per exporting binary/subsystem).
const promPrefix = "unmasque_"

// promFamily is one metric family being assembled for exposition.
type promFamily struct {
	name    string // fully sanitized, prefixed
	typ     string // counter | gauge | histogram
	samples []promPoint
}

// promPoint is one sample of a family: its label value (empty for the
// unlabeled form) plus either a scalar or a histogram snapshot.
type promPoint struct {
	label string
	value float64
	hist  *obs.HistogramSnapshot
}

// WritePrometheus renders the registry in Prometheus text exposition
// format 0.0.4. The output is deterministic for a given registry
// state: families are sorted by name, samples by label value, and
// histogram buckets are emitted cumulatively in bound order with the
// trailing +Inf, _sum and _count series.
//
// Registry names map onto families as follows: a dotted name like
// "phase_probes.filters" becomes family "phase_probes" with a label
// ({phase="filters"} for the phase_* families, {key="..."}
// otherwise); undotted names become unlabeled families. Characters
// outside the Prometheus name alphabet are rewritten to '_', and
// every family is prefixed "unmasque_". A nil registry renders
// nothing.
func WritePrometheus(w io.Writer, m *obs.Metrics) error {
	snap := m.Export()
	fams := map[string]*promFamily{}

	add := func(rawName, typ string, p promPoint) error {
		family, label := splitName(rawName)
		name := promPrefix + sanitizeName(family)
		if label != "" {
			p.label = label
		}
		f, ok := fams[name]
		if !ok {
			f = &promFamily{name: name, typ: typ}
			fams[name] = f
		}
		if f.typ != typ {
			return fmt.Errorf("telemetry: metric family %s has conflicting types %s and %s", name, f.typ, typ)
		}
		f.samples = append(f.samples, p)
		return nil
	}

	for name, v := range snap.Counters {
		if err := add(name, "counter", promPoint{value: float64(v)}); err != nil {
			return err
		}
	}
	for name, v := range snap.Gauges {
		if err := add(name, "gauge", promPoint{value: float64(v)}); err != nil {
			return err
		}
	}
	for name, h := range snap.Histograms {
		h := h
		if err := add(name, "histogram", promPoint{hist: &h}); err != nil {
			return err
		}
	}

	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)

	var b strings.Builder
	for _, name := range names {
		f := fams[name]
		sort.Slice(f.samples, func(i, j int) bool { return f.samples[i].label < f.samples[j].label })
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, p := range f.samples {
			if f.typ == "histogram" {
				writeHistogram(&b, f.name, p)
				continue
			}
			fmt.Fprintf(&b, "%s%s %s\n", f.name, labelSuffix(f.name, p.label, ""), formatValue(p.value))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram emits the cumulative bucket series plus _sum/_count.
func writeHistogram(b *strings.Builder, name string, p promPoint) {
	h := p.hist
	var cum int64
	for i, bound := range h.Bounds {
		if i < len(h.Counts) {
			cum += h.Counts[i]
		}
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, labelSuffix(name, p.label, formatValue(bound)), cum)
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, labelSuffix(name, p.label, "+Inf"), h.Count)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, labelSuffix(name, p.label, ""), formatValue(h.Sum))
	fmt.Fprintf(b, "%s_count%s %d\n", name, labelSuffix(name, p.label, ""), h.Count)
}

// labelSuffix renders the {…} label block: the family's value label
// (if any) first, the histogram le label last — a fixed, deterministic
// order. Empty when there are no labels.
func labelSuffix(family, label, le string) string {
	var parts []string
	if label != "" {
		// %q produces Go-syntax escaping, which coincides with the
		// exposition format's for backslash, quote and newline.
		parts = append(parts, fmt.Sprintf("%s=%q", labelKey(family), label))
	}
	if le != "" {
		parts = append(parts, fmt.Sprintf("le=%q", le))
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// splitName separates a registry name into its family and label value
// at the first dot ("phase_probes.from-clause" → "phase_probes",
// "from-clause"). Undotted names have no label.
func splitName(name string) (family, label string) {
	if i := strings.IndexByte(name, '.'); i >= 0 {
		return name[:i], name[i+1:]
	}
	return name, ""
}

// labelKey picks the label key of a dotted family: the phase-keyed
// families read naturally as {phase="…"}; anything else gets the
// generic "key".
func labelKey(family string) string {
	switch {
	case strings.HasPrefix(family, promPrefix+"phase_"):
		return "phase"
	default:
		return "key"
	}
}

// sanitizeName rewrites a registry name into the Prometheus metric
// name alphabet [a-zA-Z0-9_:] (invalid leading digits get an
// underscore prefix).
func sanitizeName(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// formatValue renders a float the way Prometheus clients do: shortest
// representation that round-trips.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
