package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"unmasque/internal/obs"
)

func catapultFixture() (obs.RunHeader, []obs.SpanEvent, []obs.ProbeEvent) {
	h := obs.RunHeader{Type: obs.TypeRun, App: "tpch/Q3", Workers: 2, Seed: 1}
	spans := []obs.SpanEvent{
		{Type: obs.TypeSpan, ID: 1, Parent: 0, Name: "extract", Seq: -1, StartUS: 0, DurUS: 5000},
		{Type: obs.TypeSpan, ID: 2, Parent: 1, Name: "filters", Seq: 1, StartUS: 100, DurUS: 2000,
			Attrs: map[string]string{"columns": "3"}},
		{Type: obs.TypeSpan, ID: 3, Parent: 2, Name: "probe", Seq: 0, StartUS: 150, DurUS: 80, Err: "timeout"},
	}
	probes := []obs.ProbeEvent{
		{Type: obs.TypeProbe, Phase: "filters", PhaseSeq: 4, Kind: obs.KindExec,
			Cache: obs.CacheMiss, Digest: "ab", Rows: 1, Worker: 1, TSUS: 150, DurUS: 80},
		{Type: obs.TypeProbe, Phase: "from-clause", PhaseSeq: 1, Kind: obs.KindRename,
			Table: "orders", Cache: obs.CacheNone, Err: "no such table", Worker: 0, TSUS: 10, DurUS: 30},
	}
	return h, spans, probes
}

func TestWriteCatapultStructure(t *testing.T) {
	h, spans, probes := catapultFixture()
	var buf bytes.Buffer
	if err := WriteCatapult(&buf, h, spans, probes); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
		Other       map[string]any   `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if doc.Unit != "ms" || doc.Other["app"] != "tpch/Q3" || doc.Other["workers"] != float64(2) {
		t.Errorf("container metadata wrong: unit=%q other=%v", doc.Unit, doc.Other)
	}
	var metas, spanEvents, probeEvents int
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "M":
			metas++
		case "X":
			switch e["cat"] {
			case "span":
				spanEvents++
				if e["tid"] != float64(0) {
					t.Errorf("span on wrong track: %v", e)
				}
			case "probe":
				probeEvents++
			}
		default:
			t.Errorf("unexpected phase %v", e["ph"])
		}
	}
	// process_name + pipeline thread + 2 worker threads.
	if metas != 4 || spanEvents != 3 || probeEvents != 2 {
		t.Errorf("event counts: meta=%d span=%d probe=%d", metas, spanEvents, probeEvents)
	}
	out := buf.String()
	for _, want := range []string{
		`"name":"worker 0"`, `"name":"worker 1"`, `"name":"pipeline"`,
		`"name":"exec:filters"`, `"name":"rename:from-clause"`,
		`"err":"timeout"`, `"table":"orders"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %s in output", want)
		}
	}
}

func TestWriteCatapultDeterministic(t *testing.T) {
	h, spans, probes := catapultFixture()
	var a, b bytes.Buffer
	if err := WriteCatapult(&a, h, spans, probes); err != nil {
		t.Fatal(err)
	}
	if err := WriteCatapult(&b, h, spans, probes); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two renders differ")
	}
}

func TestCatapultFromTrace(t *testing.T) {
	// Build a real trace file through the obs writer, then convert.
	tr := obs.NewTracer("extract")
	phase := tr.Root().Child("filters", obs.SeqAuto)
	phase.End()
	tr.Root().End()
	l := obs.NewLedger()
	l.Record(obs.ProbeEvent{Phase: "filters", PhaseSeq: 1, Kind: obs.KindExec,
		Cache: obs.CacheMiss, Digest: "ab", Rows: 1})
	var trace bytes.Buffer
	h := obs.RunHeader{App: "enki/posts_by_tag", Workers: 1}
	if err := obs.WriteTrace(&trace, h, tr.Events(), l); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := CatapultFromTrace(&out, bytes.NewReader(trace.Bytes())); err != nil {
		t.Fatalf("conversion failed: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("converted output not JSON: %v", err)
	}
	events, ok := doc["traceEvents"].([]any)
	if !ok || len(events) == 0 {
		t.Fatalf("no traceEvents in conversion: %v", doc)
	}
}

func TestCatapultFromTraceRejectsGarbage(t *testing.T) {
	for name, in := range map[string]string{
		"not json":     "hello\n",
		"unknown type": `{"type":"mystery"}` + "\n",
	} {
		if err := CatapultFromTrace(&bytes.Buffer{}, strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestWriteCatapultEmptyApp(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCatapult(&buf, obs.RunHeader{}, nil, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"name":"unmasque"`) {
		t.Errorf("empty app must fall back to a default process name:\n%s", buf.String())
	}
}
