package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"unmasque/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// promRegistry builds the fixed registry the golden file pins.
func promRegistry() *obs.Metrics {
	m := obs.NewMetrics()
	m.Counter("probes_total").Add(42)
	m.Counter("app_invocations").Add(30)
	m.Counter("cache_hit").Add(12)
	m.Counter("phase_probes.from-clause").Add(8)
	m.Counter("phase_probes.filters").Add(22)
	m.Counter("phase_probes.projection").Add(12)
	m.Counter("engine_index_hits").Add(100)
	m.Gauge("queue_depth").Set(3)
	m.Gauge("jobs_running").Set(2)
	h := m.Histogram("probe_latency_ms")
	for _, v := range []float64{0.05, 0.2, 0.2, 0.9, 3, 40, 4000, 99999} {
		h.Observe(v)
	}
	ph := m.Histogram("phase_ms.filters")
	ph.Observe(12.5)
	ph.Observe(0.5)
	return m
}

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, promRegistry()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics_golden.prom")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden file missing (run with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden file.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	m := promRegistry()
	var a, b bytes.Buffer
	if err := WritePrometheus(&a, m); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheus(&b, m); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two renders of the same registry differ")
	}
}

func TestWritePrometheusRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, promRegistry()); err != nil {
		t.Fatal(err)
	}
	fams, err := ParsePromText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("encoder output rejected by the parser: %v", err)
	}
	byName := map[string]PromFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	pp, ok := byName["unmasque_phase_probes"]
	if !ok || pp.Type != "counter" || len(pp.Samples) != 3 {
		t.Fatalf("phase_probes family wrong: %+v", pp)
	}
	var phases []string
	for _, s := range pp.Samples {
		phases = append(phases, s.Labels["phase"])
	}
	if strings.Join(phases, ",") != "filters,from-clause,projection" {
		t.Errorf("label ordering not deterministic: %v", phases)
	}
	lat, ok := byName["unmasque_probe_latency_ms"]
	if !ok || lat.Type != "histogram" {
		t.Fatalf("latency histogram missing: %+v", byName)
	}
	if g, ok := byName["unmasque_queue_depth"]; !ok || g.Type != "gauge" || g.Samples[0].Value != 3 {
		t.Errorf("gauge family wrong: %+v", g)
	}
}

func TestWritePrometheusHistogramCumulative(t *testing.T) {
	m := obs.NewMetrics()
	h := m.Histogram("lat")
	h.Observe(0.05) // bucket le=0.1
	h.Observe(0.2)  // bucket le=0.25
	h.Observe(7000) // overflow
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, m); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`unmasque_lat_bucket{le="0.1"} 1`,
		`unmasque_lat_bucket{le="0.25"} 2`,
		`unmasque_lat_bucket{le="5000"} 2`,
		`unmasque_lat_bucket{le="+Inf"} 3`,
		`unmasque_lat_sum 7000.25`,
		`unmasque_lat_count 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWritePrometheusNilAndEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("nil registry rendered %q", buf.String())
	}
	if err := WritePrometheus(&buf, obs.NewMetrics()); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("empty registry rendered %q", buf.String())
	}
}

func TestWritePrometheusTypeConflict(t *testing.T) {
	m := obs.NewMetrics()
	m.Counter("x").Add(1)
	m.Gauge("x").Set(2)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, m); err == nil {
		t.Error("conflicting counter/gauge name must error, not emit an invalid document")
	}
}

func TestWritePrometheusSanitizesNames(t *testing.T) {
	m := obs.NewMetrics()
	m.Counter("weird-name with spaces").Add(1)
	m.Counter("phase_probes.group-by").Add(2)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, m); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "unmasque_weird_name_with_spaces 1") {
		t.Errorf("name not sanitized:\n%s", out)
	}
	if !strings.Contains(out, `unmasque_phase_probes{phase="group-by"} 2`) {
		t.Errorf("label value must keep its raw form:\n%s", out)
	}
	if _, err := ParsePromText(strings.NewReader(out)); err != nil {
		t.Errorf("sanitized output rejected: %v", err)
	}
}
