package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
)

// Stream is the live trace broker behind GET /jobs/{id}/trace/stream:
// frames published by the job's Tracer/Ledger sinks are buffered for
// replay and fanned out to SSE subscribers. Semantics:
//
//   - A subscriber receives every frame published before it joined
//     (the replay prefix, up to the buffer cap) and then every frame
//     published after, in publish order, with no gap or duplication
//     at the boundary.
//   - Close marks the stream terminal and closes every live channel;
//     subscribing to a closed stream returns the full replay and an
//     already-closed channel — the "terminal job: immediate replay +
//     close" contract.
//   - Publishers never block: a subscriber that stops draining has
//     its channel closed and is dropped (it can re-subscribe and
//     recover via the replay prefix, or fetch the finished trace).
//
// All methods are safe for concurrent use; a nil *Stream no-ops.
type Stream struct {
	mu        sync.Mutex
	replay    [][]byte
	subs      map[int]chan []byte
	nextSub   int
	closed    bool
	maxReplay int
	truncated bool
}

// subBuffer is the per-subscriber channel depth; a consumer this far
// behind a live extraction is shed rather than backpressured.
const subBuffer = 1024

// NewStream builds a broker whose replay buffer keeps up to maxReplay
// frames (<= 0 selects 65536, comfortably above a full TPC-H
// extraction's frame count). When the cap is hit, the oldest frames
// are dropped and the replay prefix is marked truncated.
func NewStream(maxReplay int) *Stream {
	if maxReplay <= 0 {
		maxReplay = 1 << 16
	}
	return &Stream{subs: map[int]chan []byte{}, maxReplay: maxReplay}
}

// Publish marshals one frame (any of the obs event structs) and
// delivers it to the replay buffer and every live subscriber.
// Publishing to a closed or nil stream is a no-op, as is a frame that
// fails to marshal.
func (s *Stream) Publish(frame any) {
	if s == nil {
		return
	}
	enc, err := json.Marshal(frame)
	if err != nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	if len(s.replay) >= s.maxReplay {
		s.replay = s.replay[1:]
		s.truncated = true
	}
	s.replay = append(s.replay, enc)
	for id, ch := range s.subs {
		select {
		case ch <- enc:
		default: // slow consumer: shed it
			close(ch)
			delete(s.subs, id)
		}
	}
}

// Subscribe returns the replay prefix, a channel of subsequent
// frames, and a cancel function. The replay snapshot and the
// subscription are atomic: every published frame lands in exactly one
// of the two. The channel is closed when the stream closes or the
// subscriber falls too far behind; cancel is idempotent and safe
// after close. Nil streams return an empty replay and a closed
// channel.
func (s *Stream) Subscribe() (replay [][]byte, live <-chan []byte, cancel func()) {
	if s == nil {
		ch := make(chan []byte)
		close(ch)
		return nil, ch, func() {}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	replay = append([][]byte(nil), s.replay...)
	ch := make(chan []byte, subBuffer)
	if s.closed {
		close(ch)
		return replay, ch, func() {}
	}
	id := s.nextSub
	s.nextSub++
	s.subs[id] = ch
	return replay, ch, func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if c, ok := s.subs[id]; ok {
			close(c)
			delete(s.subs, id)
		}
	}
}

// Close marks the stream terminal: live channels close, later
// subscribers get replay-only. Idempotent; nil-safe.
func (s *Stream) Close() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for id, ch := range s.subs {
		close(ch)
		delete(s.subs, id)
	}
}

// Closed reports whether the stream is terminal.
func (s *Stream) Closed() bool {
	if s == nil {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Len reports the replay buffer's frame count.
func (s *Stream) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.replay)
}

// Truncated reports whether the replay prefix lost frames to the cap.
func (s *Stream) Truncated() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.truncated
}

// ServeSSE streams the broker over Server-Sent Events: the replay
// prefix first, then live frames as they are published, each as one
// `data: <json>` event, until the stream closes or the client goes
// away. The handler flushes after every frame so a tailing client
// sees probes in real time.
func ServeSSE(w http.ResponseWriter, r *http.Request, s *Stream) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	replay, live, cancel := s.Subscribe()
	defer cancel()
	for _, frame := range replay {
		if _, err := fmt.Fprintf(w, "data: %s\n\n", frame); err != nil {
			return
		}
	}
	fl.Flush()
	ctx := r.Context()
	for {
		select {
		case frame, ok := <-live:
			if !ok {
				return
			}
			if _, err := fmt.Fprintf(w, "data: %s\n\n", frame); err != nil {
				return
			}
			fl.Flush()
		case <-ctx.Done():
			return
		}
	}
}
