package telemetry

import (
	"bufio"
	"context"

	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"unmasque/internal/obs"
)

func TestStreamReplayThenLive(t *testing.T) {
	s := NewStream(0)
	s.Publish(obs.JobEvent{Type: obs.TypeJob, ID: 1, State: "running"})
	s.Publish(obs.ProbeEvent{Type: obs.TypeProbe, Phase: "filters", Kind: obs.KindExec, Cache: obs.CacheMiss})

	replay, live, cancel := s.Subscribe()
	defer cancel()
	if len(replay) != 2 {
		t.Fatalf("replay prefix has %d frames, want 2", len(replay))
	}
	s.Publish(obs.JobEvent{Type: obs.TypeJob, ID: 1, State: "done"})
	select {
	case frame := <-live:
		if !strings.Contains(string(frame), `"done"`) {
			t.Errorf("live frame wrong: %s", frame)
		}
	case <-time.After(time.Second):
		t.Fatal("live frame never arrived")
	}
	// The replay snapshot and subscription are atomic: nothing
	// published before Subscribe may appear on the live channel.
	select {
	case frame := <-live:
		t.Fatalf("unexpected extra live frame: %s", frame)
	default:
	}
}

func TestStreamCloseSemantics(t *testing.T) {
	s := NewStream(0)
	s.Publish(obs.JobEvent{Type: obs.TypeJob, State: "running"})
	_, live, cancel := s.Subscribe()
	defer cancel()
	s.Close()
	if _, ok := <-live; ok {
		t.Error("live channel must close when the stream closes")
	}
	if !s.Closed() {
		t.Error("Closed() false after Close")
	}
	// Terminal subscribe: full replay, already-closed channel.
	replay, live2, cancel2 := s.Subscribe()
	defer cancel2()
	if len(replay) != 1 {
		t.Errorf("terminal replay has %d frames, want 1", len(replay))
	}
	if _, ok := <-live2; ok {
		t.Error("terminal subscription channel must be closed")
	}
	s.Publish(obs.JobEvent{Type: obs.TypeJob, State: "done"}) // no-op
	if s.Len() != 1 {
		t.Error("publish after close must not grow the replay buffer")
	}
	s.Close() // idempotent
}

func TestStreamSlowConsumerShed(t *testing.T) {
	s := NewStream(0)
	_, live, cancel := s.Subscribe()
	defer cancel()
	for i := 0; i < subBuffer+10; i++ {
		s.Publish(obs.JobEvent{Type: obs.TypeJob, ID: int64(i), State: "running"})
	}
	n := 0
	for range live {
		n++
	}
	if n != subBuffer {
		t.Errorf("shed consumer drained %d frames, want the %d buffered", n, subBuffer)
	}
	if s.Len() != subBuffer+10 {
		t.Errorf("replay buffer must keep everything: %d", s.Len())
	}
}

func TestStreamReplayTruncation(t *testing.T) {
	s := NewStream(4)
	for i := 0; i < 10; i++ {
		s.Publish(obs.JobEvent{Type: obs.TypeJob, ID: int64(i), State: "running"})
	}
	replay, _, cancel := s.Subscribe()
	defer cancel()
	if len(replay) != 4 || !s.Truncated() {
		t.Errorf("cap not applied: %d frames, truncated=%v", len(replay), s.Truncated())
	}
	if !strings.Contains(string(replay[0]), `"id":6`) {
		t.Errorf("oldest frames must be the ones dropped: %s", replay[0])
	}
}

func TestStreamNilSafety(t *testing.T) {
	var s *Stream
	s.Publish(obs.JobEvent{})
	s.Close()
	if !s.Closed() || s.Len() != 0 || s.Truncated() {
		t.Error("nil stream accessors wrong")
	}
	replay, live, cancel := s.Subscribe()
	cancel()
	if len(replay) != 0 {
		t.Error("nil stream replay not empty")
	}
	if _, ok := <-live; ok {
		t.Error("nil stream channel must be closed")
	}
}

func TestStreamCancelIdempotent(t *testing.T) {
	s := NewStream(0)
	_, _, cancel := s.Subscribe()
	cancel()
	cancel()
	s.Publish(obs.JobEvent{Type: obs.TypeJob, State: "running"}) // no panic on closed sub
}

// TestServeSSETerminal pins the terminal-job contract: immediate full
// replay, then the response ends.
func TestServeSSETerminal(t *testing.T) {
	s := NewStream(0)
	s.Publish(obs.RunHeader{Type: obs.TypeRun, App: "tpch/Q3"})
	s.Publish(obs.JobEvent{Type: obs.TypeJob, ID: 3, State: "done"})
	s.Close()

	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/jobs/3/trace/stream", nil)
	ServeSSE(rec, req, s)

	if ct := rec.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q", ct)
	}
	body := rec.Body.String()
	if strings.Count(body, "data: ") != 2 {
		t.Errorf("expected 2 replay frames:\n%s", body)
	}
	sum, err := obs.ValidateStream(strings.NewReader(body))
	if err != nil {
		t.Fatalf("SSE output fails the stream validator: %v", err)
	}
	if sum.Final != "done" {
		t.Errorf("final state %q", sum.Final)
	}
}

// TestServeSSELive pins the mid-job contract: a subscriber sees the
// replay prefix plus everything published after it joined, and the
// response ends when the stream closes.
func TestServeSSELive(t *testing.T) {
	s := NewStream(0)
	s.Publish(obs.RunHeader{Type: obs.TypeRun, App: "tpch/Q3"})

	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ServeSSE(w, r, s)
	}))
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	frames := make(chan string, 16)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if line := sc.Text(); strings.HasPrefix(line, "data: ") {
				frames <- line
			}
		}
		close(frames)
	}()

	read := func() string {
		select {
		case f, ok := <-frames:
			if !ok {
				t.Fatal("stream ended early")
			}
			return f
		case <-time.After(2 * time.Second):
			t.Fatal("timed out waiting for frame")
			return ""
		}
	}
	if f := read(); !strings.Contains(f, `"run"`) {
		t.Errorf("replay frame wrong: %s", f)
	}
	s.Publish(obs.ProbeEvent{Type: obs.TypeProbe, Phase: "filters", PhaseSeq: 1,
		Kind: obs.KindExec, Cache: obs.CacheMiss, Digest: "ab", Rows: 1})
	if f := read(); !strings.Contains(f, `"probe"`) {
		t.Errorf("live frame wrong: %s", f)
	}
	s.Publish(obs.JobEvent{Type: obs.TypeJob, ID: 1, State: "done"})
	s.Close()
	if f := read(); !strings.Contains(f, `"done"`) {
		t.Errorf("terminal frame wrong: %s", f)
	}
	if _, ok := <-frames; ok {
		t.Error("stream must end after close")
	}
}

// TestServeSSEClientGone verifies the handler unblocks when the
// client disconnects mid-stream.
func TestServeSSEClientGone(t *testing.T) {
	s := NewStream(0)
	ctx, cancelReq := context.WithCancel(context.Background())
	req := httptest.NewRequest("GET", "/stream", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		ServeSSE(rec, req, s)
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	cancelReq()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("handler did not return after client disconnect")
	}
}

// TestServeSSERequiresFlusher covers the non-flushing writer path.
func TestServeSSERequiresFlusher(t *testing.T) {
	s := NewStream(0)
	w := &nonFlushingWriter{header: http.Header{}}
	ServeSSE(w, httptest.NewRequest("GET", "/stream", nil), s)
	if w.status != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", w.status)
	}
}

type nonFlushingWriter struct {
	header http.Header
	status int
}

func (w *nonFlushingWriter) Header() http.Header { return w.header }
func (w *nonFlushingWriter) WriteHeader(s int)   { w.status = s }
func (w *nonFlushingWriter) Write(p []byte) (int, error) {
	return len(p), nil
}
