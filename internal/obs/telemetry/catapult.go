package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"unmasque/internal/obs"
)

// catapultEvent is one entry of the Chrome trace-event ("catapult")
// JSON format, the schema about://tracing and Perfetto ingest.
// Timestamps and durations are microseconds.
type catapultEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// catapultTrace is the JSON-object container variant of the format.
type catapultTrace struct {
	TraceEvents     []catapultEvent `json:"traceEvents"`
	DisplayTimeUnit string          `json:"displayTimeUnit"`
	OtherData       map[string]any  `json:"otherData,omitempty"`
}

// WriteCatapult renders a recorded extraction trace as Chrome
// trace-event JSON. Spans become complete ("X") events on the
// pipeline track (tid 0); probe-ledger events become complete events
// on one track per scheduler worker (tid = worker+1), so the Perfetto
// timeline shows phase structure above and probe fan-out below.
// Metadata events name the process after the traced application and
// label every track. The output is deterministic for a given input
// (events keep input order; workers are discovered in sorted order).
func WriteCatapult(w io.Writer, h obs.RunHeader, spans []obs.SpanEvent, probes []obs.ProbeEvent) error {
	app := h.App
	if app == "" {
		app = "unmasque"
	}
	var events []catapultEvent
	events = append(events, metaEvent("process_name", 0, map[string]any{"name": app}))
	events = append(events, metaEvent("thread_name", 0, map[string]any{"name": "pipeline"}))

	workerSet := map[int]bool{}
	for _, p := range probes {
		workerSet[p.Worker] = true
	}
	workers := make([]int, 0, len(workerSet))
	for w := range workerSet {
		workers = append(workers, w)
	}
	sort.Ints(workers)
	for _, wk := range workers {
		events = append(events, metaEvent("thread_name", wk+1, map[string]any{
			"name": fmt.Sprintf("worker %d", wk),
		}))
	}

	for _, s := range spans {
		args := map[string]any{"seq": s.Seq}
		if s.ID != 0 {
			args["id"] = s.ID
			args["parent"] = s.Parent
		}
		for k, v := range s.Attrs {
			args[k] = v
		}
		if s.Err != "" {
			args["err"] = s.Err
		}
		if s.Open {
			args["open"] = true
		}
		events = append(events, catapultEvent{
			Name: s.Name, Cat: "span", Ph: "X",
			TS: s.StartUS, Dur: s.DurUS, PID: 1, TID: 0, Args: args,
		})
	}
	for _, p := range probes {
		args := map[string]any{"phase": p.Phase, "cache": p.Cache}
		if p.Table != "" {
			args["table"] = p.Table
		}
		if p.FP != "" {
			args["fp"] = p.FP
		}
		if p.Digest != "" {
			args["digest"] = p.Digest
			args["rows"] = p.Rows
		}
		if p.Err != "" {
			args["err"] = p.Err
		}
		events = append(events, catapultEvent{
			Name: p.Kind + ":" + p.Phase, Cat: "probe", Ph: "X",
			TS: p.TSUS, Dur: p.DurUS, PID: 1, TID: p.Worker + 1, Args: args,
		})
	}

	other := map[string]any{"app": app}
	if h.Workers != 0 {
		other["workers"] = h.Workers
	}
	if h.Seed != 0 {
		other["seed"] = h.Seed
	}
	enc := json.NewEncoder(w)
	return enc.Encode(catapultTrace{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
		OtherData:       other,
	})
}

// metaEvent builds one "M" metadata record.
func metaEvent(name string, tid int, args map[string]any) catapultEvent {
	return catapultEvent{Name: name, Ph: "M", PID: 1, TID: tid, Args: args}
}

// CatapultFromTrace converts a recorded JSONL trace file (the -trace
// / /jobs/{id}/trace format: run header, spans, probe ledger) into
// Chrome trace-event JSON. Probe events are replayed on their
// arrival-order timeline (TSUS), which StripVolatile zeroes — convert
// unstripped traces for a meaningful timeline.
func CatapultFromTrace(w io.Writer, r io.Reader) error {
	var (
		header obs.RunHeader
		spans  []obs.SpanEvent
		probes []obs.ProbeEvent
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var head struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(raw, &head); err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
		switch head.Type {
		case obs.TypeRun:
			if err := json.Unmarshal(raw, &header); err != nil {
				return fmt.Errorf("line %d: %w", line, err)
			}
		case obs.TypeSpan:
			var s obs.SpanEvent
			if err := json.Unmarshal(raw, &s); err != nil {
				return fmt.Errorf("line %d: %w", line, err)
			}
			spans = append(spans, s)
		case obs.TypeProbe:
			var p obs.ProbeEvent
			if err := json.Unmarshal(raw, &p); err != nil {
				return fmt.Errorf("line %d: %w", line, err)
			}
			probes = append(probes, p)
		default:
			return fmt.Errorf("line %d: unknown event type %q", line, head.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return WriteCatapult(w, header, spans, probes)
}
