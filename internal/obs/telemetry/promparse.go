package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PromSample is one parsed exposition sample.
type PromSample struct {
	// Name is the full series name (histogram samples keep their
	// _bucket/_sum/_count suffix).
	Name   string
	Labels map[string]string
	Value  float64
}

// PromFamily groups the samples of one declared metric family.
type PromFamily struct {
	Name    string // the TYPE-declared base name
	Type    string // counter | gauge | histogram | summary | untyped
	Samples []PromSample
}

// ParsePromText parses and validates a Prometheus text-exposition
// (0.0.4) document — the round-trip check CI runs against the live
// daemon's /metrics?format=prom. Beyond syntax, it enforces the
// invariants scrapers rely on:
//
//   - every sample belongs to a family declared by a # TYPE line
//     (this validator checks encoder output, which always declares);
//   - no family is declared twice, no series repeats a label set;
//   - histogram families have cumulative, non-decreasing buckets in
//     ascending le order ending at le="+Inf", and carry matching
//     _count (== the +Inf bucket) and _sum series per label set.
//
// Families are returned sorted by name with their samples in input
// order.
func ParsePromText(r io.Reader) ([]PromFamily, error) {
	fams := map[string]*PromFamily{}
	var order []string
	seenSeries := map[string]bool{}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), " \t")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: malformed TYPE line", lineNo)
				}
				name, typ := fields[2], fields[3]
				if !validMetricName(name) {
					return nil, fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
				}
				if _, dup := fams[name]; dup {
					return nil, fmt.Errorf("line %d: duplicate TYPE declaration for %s", lineNo, name)
				}
				fams[name] = &PromFamily{Name: name, Type: typ}
				order = append(order, name)
			}
			continue // HELP and comments
		}
		sample, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam := familyOf(fams, sample.Name)
		if fam == nil {
			return nil, fmt.Errorf("line %d: sample %s has no TYPE declaration", lineNo, sample.Name)
		}
		key := seriesKey(sample)
		if seenSeries[key] {
			return nil, fmt.Errorf("line %d: duplicate series %s", lineNo, key)
		}
		seenSeries[key] = true
		fam.Samples = append(fam.Samples, sample)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	for _, name := range order {
		fam := fams[name]
		if fam.Type == "histogram" {
			if err := checkHistogramFamily(fam); err != nil {
				return nil, fmt.Errorf("family %s: %w", name, err)
			}
		}
	}
	sort.Strings(order)
	out := make([]PromFamily, 0, len(order))
	for _, name := range order {
		out = append(out, *fams[name])
	}
	return out, nil
}

// familyOf resolves a sample name to its declared family, peeling
// histogram suffixes.
func familyOf(fams map[string]*PromFamily, name string) *PromFamily {
	if f, ok := fams[name]; ok {
		return f
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(name, suffix)
		if !ok {
			continue
		}
		if f, ok := fams[base]; ok && (f.Type == "histogram" || f.Type == "summary") {
			return f
		}
	}
	return nil
}

// parseSample parses one `name{labels} value` line.
func parseSample(line string) (PromSample, error) {
	s := PromSample{Labels: map[string]string{}}
	i := 0
	for i < len(line) && isNameChar(line[i], i == 0) {
		i++
	}
	if i == 0 {
		return s, fmt.Errorf("malformed sample line %q", line)
	}
	s.Name = line[:i]
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end := findLabelEnd(rest)
		if end < 0 {
			return s, fmt.Errorf("unterminated label block in %q", line)
		}
		labels, err := parseLabels(rest[1:end])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional trailing timestamp
		return s, fmt.Errorf("malformed sample value in %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("malformed sample value %q: %w", fields[0], err)
	}
	s.Value = v
	return s, nil
}

// findLabelEnd locates the closing brace of a label block, honouring
// quoted values with escapes.
func findLabelEnd(s string) int {
	inQuote := false
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case '}':
			if !inQuote {
				return i
			}
		}
	}
	return -1
}

// parseLabels parses `k1="v1",k2="v2"` with \\, \" and \n escapes.
func parseLabels(s string) (map[string]string, error) {
	out := map[string]string{}
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("malformed label pair in %q", s)
		}
		key := strings.TrimSpace(s[:eq])
		if !validLabelName(key) {
			return nil, fmt.Errorf("invalid label name %q", key)
		}
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return nil, fmt.Errorf("unquoted label value for %q", key)
		}
		var val strings.Builder
		i := 1
		closed := false
		for i < len(s) {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, fmt.Errorf("unknown escape \\%c in label %s", s[i+1], key)
				}
				i += 2
				continue
			}
			if c == '"' {
				closed = true
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		if !closed {
			return nil, fmt.Errorf("unterminated label value for %q", key)
		}
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("duplicate label %q", key)
		}
		out[key] = val.String()
		s = s[i:]
		s = strings.TrimPrefix(s, ",")
	}
	return out, nil
}

// checkHistogramFamily enforces the bucket invariants per label set.
func checkHistogramFamily(fam *PromFamily) error {
	type group struct {
		les     []float64
		counts  []int64
		infSeen bool
		inf     int64
		count   int64
		hasCnt  bool
		hasSum  bool
	}
	groups := map[string]*group{}
	groupOf := func(labels map[string]string) *group {
		key := labelSetKey(labels, "le")
		g, ok := groups[key]
		if !ok {
			g = &group{}
			groups[key] = g
		}
		return g
	}
	for _, s := range fam.Samples {
		switch s.Name {
		case fam.Name + "_bucket":
			g := groupOf(s.Labels)
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("bucket sample without le label")
			}
			if le == "+Inf" {
				g.infSeen = true
				g.inf = int64(s.Value)
				continue
			}
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return fmt.Errorf("malformed le %q", le)
			}
			g.les = append(g.les, bound)
			g.counts = append(g.counts, int64(s.Value))
		case fam.Name + "_count":
			g := groupOf(s.Labels)
			g.count = int64(s.Value)
			g.hasCnt = true
		case fam.Name + "_sum":
			groupOf(s.Labels).hasSum = true
		default:
			return fmt.Errorf("unexpected histogram series %s", s.Name)
		}
	}
	for key, g := range groups {
		if !g.infSeen {
			return fmt.Errorf("label set %s: no le=\"+Inf\" bucket", key)
		}
		if !g.hasCnt || !g.hasSum {
			return fmt.Errorf("label set %s: missing _count or _sum", key)
		}
		if g.inf != g.count {
			return fmt.Errorf("label set %s: +Inf bucket %d != count %d", key, g.inf, g.count)
		}
		prev := int64(0)
		for i, c := range g.counts {
			if i > 0 && g.les[i] <= g.les[i-1] {
				return fmt.Errorf("label set %s: buckets out of order (le %v after %v)", key, g.les[i], g.les[i-1])
			}
			if c < prev {
				return fmt.Errorf("label set %s: non-cumulative bucket at le %v", key, g.les[i])
			}
			prev = c
		}
		if prev > g.inf {
			return fmt.Errorf("label set %s: finite bucket %d exceeds +Inf %d", key, prev, g.inf)
		}
	}
	return nil
}

// seriesKey identifies a series: name plus its sorted label set.
func seriesKey(s PromSample) string {
	return s.Name + labelSetKey(s.Labels, "")
}

// labelSetKey renders labels (minus the excluded key) sorted, for
// grouping and duplicate detection.
func labelSetKey(labels map[string]string, exclude string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k == exclude {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isNameChar(s[i], i == 0) {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// isNameChar reports whether c is legal in a metric name (digits are
// illegal only in leading position).
func isNameChar(c byte, leading bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !leading
	default:
		return false
	}
}
